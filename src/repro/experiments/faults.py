"""Deterministic fault injection for testing the resilience layer itself.

The retry, timeout, and resume paths of :func:`repro.experiments.runner.
run_matrix` only matter when cells actually fail — which healthy code
never does in CI.  This module lets tests (and the CI smoke job) inject
failures into specific matrix cells, deterministically keyed on
``(config name, mix name, attempt number)`` so the same spec reproduces
the same failure in-process, across forked workers, and across retries.

A fault spec is ``kind:config:mix[:times][:seconds]``:

* ``kind`` — ``raise`` (throw :class:`~repro.common.errors.InjectedFault`),
  ``crash`` (``os._exit``: simulates a segfault/OOM-killed worker),
  ``hang`` (sleep ``seconds``, default 3600: simulates a livelock; the
  runner's wall-clock timeout must kill it), ``slow`` (sleep
  ``seconds`` then proceed normally), or ``timing`` (corrupt the DRAM
  array timing of a checker-enabled run so that banks answer faster
  than the protocol allows — the :mod:`repro.validate` timing checker
  must catch it; the ``seconds`` field doubles as the shrink factor
  when it is in ``(0, 1)``, defaulting to 0.5 otherwise).
* ``config`` / ``mix`` — cell coordinates; ``*`` matches any.
* ``times`` — affect attempts ``1..times`` (default 1, so the first retry
  succeeds); ``-1`` means every attempt.
* ``seconds`` — sleep length for ``hang``/``slow``.

Specs reach worker processes through the ``REPRO_FAULTS`` environment
variable (inherited on fork) or in-process via :func:`install` (serial
runs and tests).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..common.errors import InjectedFault

#: Environment variable holding ``;``-separated fault specs.
ENV_VAR = "REPRO_FAULTS"

KINDS = ("raise", "crash", "hang", "slow", "timing")

#: Timing shrink factor applied when a ``timing`` fault leaves the
#: ``seconds`` field at its sleep-oriented default.
DEFAULT_TIMING_FACTOR = 0.5

#: Exit code used by ``crash`` faults (distinctive in post-mortems).
CRASH_EXITCODE = 117


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault, matched against (config, mix, attempt)."""

    kind: str
    config: str
    mix: str
    times: int = 1
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(KINDS)}"
            )

    def matches(self, config: str, mix: str, attempt: int) -> bool:
        if self.config != "*" and self.config != config:
            return False
        if self.mix != "*" and self.mix != mix:
            return False
        return self.times < 0 or attempt <= self.times

    @property
    def timing_factor(self) -> float:
        """Shrink factor for ``timing`` faults (``seconds`` reinterpreted)."""
        if 0.0 < self.seconds < 1.0:
            return self.seconds
        return DEFAULT_TIMING_FACTOR

    def encode(self) -> str:
        return (
            f"{self.kind}:{self.config}:{self.mix}:{self.times}:{self.seconds:g}"
        )


def parse_fault(text: str) -> FaultSpec:
    """Parse one ``kind:config:mix[:times][:seconds]`` spec."""
    parts = text.strip().split(":")
    if len(parts) < 3:
        raise ValueError(
            f"fault spec {text!r} needs at least kind:config:mix"
        )
    kind, config, mix = parts[0], parts[1], parts[2]
    times = int(parts[3]) if len(parts) > 3 and parts[3] else 1
    seconds = float(parts[4]) if len(parts) > 4 and parts[4] else 3600.0
    return FaultSpec(kind=kind, config=config, mix=mix, times=times, seconds=seconds)


def parse_faults(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a ``;``-separated list of fault specs (empty → no faults)."""
    return tuple(
        parse_fault(part) for part in text.split(";") if part.strip()
    )


def encode_faults(specs: Tuple[FaultSpec, ...]) -> str:
    """Inverse of :func:`parse_faults` (for exporting via ``REPRO_FAULTS``)."""
    return ";".join(spec.encode() for spec in specs)


_installed: Optional[Tuple[FaultSpec, ...]] = None


def install(*specs: FaultSpec) -> None:
    """Activate faults in this process (overrides ``REPRO_FAULTS``)."""
    global _installed
    _installed = tuple(specs)


def clear() -> None:
    """Deactivate in-process faults (``REPRO_FAULTS`` applies again)."""
    global _installed
    _installed = None


def active_faults() -> Tuple[FaultSpec, ...]:
    """Faults in effect: installed ones, else parsed from the environment."""
    if _installed is not None:
        return _installed
    return parse_faults(os.environ.get(ENV_VAR, ""))


def inject(config: str, mix: str, attempt: int) -> None:
    """Apply the first matching active fault for this cell attempt.

    Called by the runner's worker entry point before simulating a cell.
    No matching fault means no effect — production sweeps run this as a
    single dict lookup against an empty tuple.
    """
    for spec in active_faults():
        if not spec.matches(config, mix, attempt):
            continue
        if spec.kind == "timing":
            # Timing corruption is applied where the DRAM model is
            # built (see repro.validate.hooks), not at cell start.
            continue
        if spec.kind == "raise":
            raise InjectedFault(
                f"injected fault in cell ({config}, {mix}) attempt {attempt}"
            )
        if spec.kind == "crash":
            os._exit(CRASH_EXITCODE)
        if spec.kind in ("hang", "slow"):
            time.sleep(spec.seconds)
        return


# ----------------------------------------------------------------------
# Service-layer fault injection (the sweep-service chaos harness)
#
# Cell faults above fire *inside* a simulation attempt; service faults
# target the machinery around it: the worker processes, the result
# cache, and the service itself.  Spec syntax is identical
# (``kind:config:mix[:times][:seconds]``), carried by the
# ``REPRO_SERVICE_FAULTS`` environment variable (inherited by forked
# workers) or installed in-process via :func:`install_service`.

#: Environment variable holding ``;``-separated service fault specs.
ENV_SERVICE_VAR = "REPRO_SERVICE_FAULTS"

SERVICE_KINDS = (
    #: SIGKILL the worker process ``seconds`` after it starts a matching
    #: cell — the supervisor must observe the death, restart the worker,
    #: and retry or record the cell.
    "kill-worker",
    #: Stall the worker's heartbeat thread for ``seconds`` during a
    #: matching cell — the supervisor must declare the worker hung and
    #: recycle it even though the simulation itself is alive.
    "hb-delay",
    #: Flip a byte inside a cache entry just after it is written — the
    #: read path must detect the bad checksum, quarantine the entry,
    #: and recompute.
    "corrupt-cache",
    #: Cut a cache entry in half after it is written (a torn write that
    #: somehow survived) — same detection obligations.
    "truncate-cache",
    #: Raise :class:`~repro.common.errors.InjectedServiceCrash` after a
    #: matching cell's completion is journaled — a service killed here
    #: must resume to a bit-identical result.
    "crash-service",
    #: SIGKILL the worker ``seconds`` into a matching cell *with periodic
    #: snapshots on* — the retry must resume from the latest checkpoint
    #: (not from zero) and still produce a bit-identical result.
    "kill-worker-mid-cell",
    #: Flip one byte in the cell's on-disk snapshot before a resume
    #: attempt — the loader must refuse it (checksum) and the cell must
    #: restart cleanly from zero, never resume corrupted state.
    "corrupt-snapshot",
    #: Cut the cell's on-disk snapshot in half before a resume attempt —
    #: same refusal obligations as ``corrupt-snapshot``.
    "truncate-snapshot",
)


@dataclass(frozen=True)
class ServiceFaultSpec:
    """One injected service-layer fault, matched like :class:`FaultSpec`."""

    kind: str
    config: str = "*"
    mix: str = "*"
    times: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SERVICE_KINDS:
            raise ValueError(
                f"unknown service fault kind {self.kind!r}; "
                f"known: {', '.join(SERVICE_KINDS)}"
            )

    def matches(self, config: str, mix: str, attempt: int) -> bool:
        if self.config != "*" and self.config != config:
            return False
        if self.mix != "*" and self.mix != mix:
            return False
        return self.times < 0 or attempt <= self.times

    def encode(self) -> str:
        return (
            f"{self.kind}:{self.config}:{self.mix}:{self.times}:{self.seconds:g}"
        )


def parse_service_fault(text: str) -> ServiceFaultSpec:
    """Parse one ``kind:config:mix[:times][:seconds]`` service spec."""
    parts = text.strip().split(":")
    if len(parts) < 3:
        raise ValueError(
            f"service fault spec {text!r} needs at least kind:config:mix"
        )
    times = int(parts[3]) if len(parts) > 3 and parts[3] else 1
    seconds = float(parts[4]) if len(parts) > 4 and parts[4] else 0.0
    return ServiceFaultSpec(
        kind=parts[0], config=parts[1], mix=parts[2],
        times=times, seconds=seconds,
    )


def parse_service_faults(text: str) -> Tuple[ServiceFaultSpec, ...]:
    """Parse a ``;``-separated list of service fault specs."""
    return tuple(
        parse_service_fault(part) for part in text.split(";") if part.strip()
    )


def encode_service_faults(specs: Tuple[ServiceFaultSpec, ...]) -> str:
    """Inverse of :func:`parse_service_faults` (for ``REPRO_SERVICE_FAULTS``)."""
    return ";".join(spec.encode() for spec in specs)


_service_installed: Optional[Tuple[ServiceFaultSpec, ...]] = None


def install_service(*specs: ServiceFaultSpec) -> None:
    """Activate service faults in this process (overrides the env var)."""
    global _service_installed
    _service_installed = tuple(specs)


def clear_service() -> None:
    """Deactivate in-process service faults (the env var applies again)."""
    global _service_installed
    _service_installed = None


def active_service_faults() -> Tuple[ServiceFaultSpec, ...]:
    """Service faults in effect: installed ones, else from the environment."""
    if _service_installed is not None:
        return _service_installed
    return parse_service_faults(os.environ.get(ENV_SERVICE_VAR, ""))


def service_fault_for(
    kind: str, config: str, mix: str, attempt: int = 1
) -> Optional[ServiceFaultSpec]:
    """The first active service fault of ``kind`` matching this cell."""
    for spec in active_service_faults():
        if spec.kind == kind and spec.matches(config, mix, attempt):
            return spec
    return None


def timing_fault_for(config: str, mix: str, attempt: int = 1) -> Optional[FaultSpec]:
    """The active ``timing`` fault matching this cell, if any.

    Queried by :func:`repro.validate.hooks.attach_checkers` when it
    instruments a machine: a match means the DRAM arrays should be
    corrupted (array timings scaled by :attr:`FaultSpec.timing_factor`)
    so the timing-legality checker has a real violation to catch.
    """
    for spec in active_faults():
        if spec.kind == "timing" and spec.matches(config, mix, attempt):
            return spec
    return None


__all__ = [
    "CRASH_EXITCODE",
    "DEFAULT_TIMING_FACTOR",
    "ENV_SERVICE_VAR",
    "ENV_VAR",
    "FaultSpec",
    "SERVICE_KINDS",
    "ServiceFaultSpec",
    "active_faults",
    "active_service_faults",
    "clear",
    "clear_service",
    "encode_faults",
    "encode_service_faults",
    "inject",
    "install",
    "install_service",
    "parse_fault",
    "parse_faults",
    "parse_service_fault",
    "parse_service_faults",
    "service_fault_for",
    "timing_fault_for",
]
