"""Figure 9: the scalable L2 MHA — VBF and dynamic resizing combined.

Four variants over the default 8-entry conventional L2 MSHR baseline:

* ``8xMSHR`` — ideal single-cycle fully-associative 64-entry file (the
  impractical yardstick).
* ``VBF``    — 64-entry direct-mapped file with the Vector Bloom Filter
  (practical; probe latency modelled).
* ``Dynamic``— ideal file + dynamic capacity tuning.
* ``V+D``    — VBF + dynamic tuning: the paper's proposal.

Paper shape: VBF performs about the same as the ideal CAM because it
filters almost all unnecessary probes (2.31 probes/access dual-MC, 2.21
quad-MC, including the mandatory first probe); one pathological mix
(HM2, quad-MC) loses ~7% from the extra search latency, which V+D wins
back.  GM(H,VH): +23.0% (dual-MC) / +17.8% (quad-MC) for V+D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..system.config import SystemConfig, config_dual_mc, config_quad_mc
from ..system.scale import DEFAULT, ExperimentScale
from ..workloads.mixes import MIX_ORDER, MIXES, WorkloadMix
from .charts import grouped_bars
from .report import format_table
from .runner import ResultTable, RunPolicy, run_matrix

PAPER_GM_H_VH = {"dual-mc": 23.0, "quad-mc": 17.8}
PAPER_PROBES_PER_ACCESS = {"dual-mc": 2.31, "quad-mc": 2.21}

VARIANTS = ("8xMSHR", "VBF", "Dynamic", "V+D")


def _variants(base: SystemConfig) -> List[SystemConfig]:
    big = base.l2_mshr_per_bank * 8
    return [
        base.derive(name="baseline"),  # 8-entry conventional
        base.derive(name="8xMSHR", l2_mshr_per_bank=big),
        base.derive(
            name="VBF", l2_mshr_per_bank=big, l2_mshr_organization="vbf"
        ),
        base.derive(name="Dynamic", l2_mshr_per_bank=big, l2_mshr_dynamic=True),
        base.derive(
            name="V+D",
            l2_mshr_per_bank=big,
            l2_mshr_organization="vbf",
            l2_mshr_dynamic=True,
        ),
    ]


@dataclass
class Figure9Result:
    panel: str
    table: ResultTable
    mixes: List[str]

    def improvement(self, variant: str, mix: str) -> float:
        return (self.table.speedup(variant, mix, "baseline") - 1.0) * 100.0

    def gm_improvement(
        self, variant: str, groups: Optional[Sequence[str]] = None
    ) -> float:
        return (self.table.gm_speedup(variant, "baseline", groups) - 1.0) * 100.0

    def vbf_probes_per_access(self, variant: str = "V+D") -> float:
        """Average MSHR probes per access across the H/VH mixes."""
        probes = [
            self.table.result(variant, m).mshr_avg_probes
            for m in self.mixes
            if MIXES[m].group in ("H", "VH")
        ] or [
            self.table.result(variant, m).mshr_avg_probes for m in self.mixes
        ]
        return sum(probes) / len(probes)

    def chart(self, width: int = 40) -> str:
        """ASCII bars of %-improvement per mix, like the paper's panels."""
        variants = list(VARIANTS)
        series = {
            v: [max(0.0, self.improvement(v, m)) for m in self.mixes]
            for v in variants
        }
        return grouped_bars(
            f"Figure 9 ({self.panel}): % improvement over the baseline MHA",
            self.mixes,
            series,
            width=width,
            value_format="{:+.1f}",
        )

    def format(self) -> str:
        rows = list(self.mixes)
        columns: Dict[str, List[float]] = {
            v: [self.improvement(v, m) for m in rows] for v in VARIANTS
        }
        groups = {MIXES[m].group for m in self.mixes}
        if {"H", "VH"} <= groups:
            rows.append("GM(H,VH)")
            for v in VARIANTS:
                columns[v].append(self.gm_improvement(v, ("H", "VH")))
        rows.append("GM(all)")
        for v in VARIANTS:
            columns[v].append(self.gm_improvement(v, None))
        return format_table(
            f"Figure 9 ({self.panel}): % improvement of the scalable L2 MHA",
            rows,
            columns,
            value_format="{:+.1f}",
            note=(
                f"paper GM(H,VH) for V+D: +{PAPER_GM_H_VH[self.panel]:.1f}%; "
                f"VBF probes/access measured "
                f"{self.vbf_probes_per_access('VBF'):.2f} "
                f"(paper {PAPER_PROBES_PER_ACCESS[self.panel]:.2f})"
            ),
        )


def run_figure9(
    panel: str = "quad-mc",
    scale: ExperimentScale = DEFAULT,
    mixes: Optional[Sequence[WorkloadMix]] = None,
    seed: int = 42,
    workers: Optional[int] = None,
    policy: Optional[RunPolicy] = None,
) -> Figure9Result:
    """Regenerate one panel of Figure 9 ("dual-mc" = (a), "quad-mc" = (b))."""
    if panel not in ("dual-mc", "quad-mc"):
        raise ValueError("panel must be 'dual-mc' or 'quad-mc'")
    if mixes is None:
        mixes = [MIXES[name] for name in MIX_ORDER]
    base = config_dual_mc() if panel == "dual-mc" else config_quad_mc()
    table = run_matrix(_variants(base), mixes, scale, seed=seed, workers=workers, policy=policy)
    return Figure9Result(panel=panel, table=table, mixes=[m.name for m in mixes])
