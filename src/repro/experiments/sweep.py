"""Generic design-space sweeps over configuration fields.

The figure runners cover the paper's specific sweeps; ``sweep_field``
generalizes them: vary any :class:`SystemConfig` field across values,
simulate the given mixes, and report GM speedups relative to the first
value.  This is the "what if" tool a user reaches for after reproducing
the paper (e.g. sweep ``rob_size``, ``l2_latency``, ``mrq_capacity``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from ..system.config import SystemConfig
from ..system.scale import DEFAULT, ExperimentScale
from ..workloads.mixes import WorkloadMix, mixes_in_groups
from .report import format_table
from .runner import ResultTable, RunPolicy, run_matrix


@dataclass
class SweepResult:
    """GM speedups of every swept value over the first one."""

    field: str
    values: List[Any]
    table: ResultTable
    mixes: List[str]

    def config_name(self, value: Any) -> str:
        return f"{self.field}={value}"

    def gm(self, value: Any) -> float:
        return self.table.gm_speedup(
            self.config_name(value), self.config_name(self.values[0])
        )

    def hmipc(self, value: Any, mix: str) -> float:
        return self.table.hmipc(self.config_name(value), mix)

    def best_value(self) -> Any:
        return max(self.values, key=self.gm)

    def format(self) -> str:
        rows = [self.config_name(v) for v in self.values]
        return format_table(
            f"Sweep of {self.field} (GM speedup over {self.values[0]})",
            rows,
            {"GM speedup": [self.gm(v) for v in self.values]},
        )


def sweep_field(
    base: SystemConfig,
    field: str,
    values: Sequence[Any],
    scale: ExperimentScale = DEFAULT,
    mixes: Optional[Sequence[WorkloadMix]] = None,
    seed: int = 42,
    workers: Optional[int] = None,
    policy: Optional[RunPolicy] = None,
) -> SweepResult:
    """Vary one config field; everything else pinned to ``base``."""
    if not values:
        raise ValueError("need at least one value to sweep")
    field_names = {f.name for f in dataclasses.fields(SystemConfig)}
    if field not in field_names:
        raise ValueError(
            f"unknown SystemConfig field {field!r}; "
            f"known: {', '.join(sorted(field_names))}"
        )
    if len(set(values)) != len(values):
        raise ValueError("sweep values must be distinct")
    if mixes is None:
        mixes = mixes_in_groups("H", "VH")
    configs = [
        base.derive(name=f"{field}={value}", **{field: value})
        for value in values
    ]
    table = run_matrix(configs, mixes, scale, seed=seed, workers=workers, policy=policy)
    return SweepResult(
        field=field,
        values=list(values),
        table=table,
        mixes=[m.name for m in mixes],
    )
