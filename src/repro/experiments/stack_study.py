"""Extension study: what should the 3D stack hold — cache or memory?

The paper's conclusion ranks the "low-hanging fruit" of 3D integration:
stacking conventionally-organized memory, stacking more cache, and then
the paper's contribution — re-architected stacked memory.  This study
runs that ranking as an experiment:

* ``2D``            — off-chip DRAM baseline.
* ``2D+L3``         — the stack spent on a large L3 cache (the DRAM
  stays off-chip behind the FSB).
* ``3D``            — the stack spent on conventionally-organized DRAM.
* ``3D-fast``       — true-3D arrays + wide bus (Section 3's endpoint).
* ``quad-MC``       — the paper's full aggressive organization.

Expected shape: a stacked cache helps the FSB-bound baseline, but every
stacked-*memory* organization beats it on memory-intensive workloads,
with the gap widening as the organization is re-architected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..common.units import MIB
from ..system.config import (
    SystemConfig,
    config_2d,
    config_3d,
    config_3d_fast,
    config_quad_mc,
)
from ..system.scale import DEFAULT, ExperimentScale
from ..workloads.mixes import WorkloadMix, mixes_in_groups
from .report import format_table
from .runner import ResultTable, RunPolicy, run_matrix

ORDER = ("2D", "2D+L3", "3D", "3D-fast", "quad-MC")


def _configs(l3_size: int) -> List[SystemConfig]:
    return [
        config_2d(),
        config_2d().derive(name="2D+L3", l3_enabled=True, l3_size=l3_size),
        config_3d(),
        config_3d_fast(),
        config_quad_mc().derive(name="quad-MC"),
    ]


@dataclass
class StackStudyResult:
    table: ResultTable
    mixes: List[str]

    def gm(self, config_name: str) -> float:
        return self.table.gm_speedup(config_name, "2D")

    def format(self) -> str:
        return format_table(
            "Study: spend the 3D stack on cache vs memory "
            "(GM speedup over 2D)",
            list(ORDER),
            {"GM speedup": [self.gm(name) for name in ORDER]},
            note=(
                "expected: stacked cache < any stacked memory; "
                "re-architected memory widens the gap (paper Section 6)"
            ),
        )


def run_stack_study(
    scale: ExperimentScale = DEFAULT,
    mixes: Optional[Sequence[WorkloadMix]] = None,
    seed: int = 42,
    workers: Optional[int] = None,
    l3_size: int = 64 * MIB,
    policy: Optional[RunPolicy] = None,
) -> StackStudyResult:
    """Run the cache-vs-memory stack allocation study."""
    if mixes is None:
        mixes = mixes_in_groups("H", "VH")
    table = run_matrix(_configs(l3_size), mixes, scale, seed=seed, workers=workers, policy=policy)
    return StackStudyResult(table=table, mixes=[m.name for m in mixes])
