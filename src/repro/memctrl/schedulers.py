"""Memory access schedulers.

The paper assumes "a memory controller implementation that attempts to
schedule accesses to the same row together to increase row buffer hit
rates" (Rixner et al.'s FR-FCFS); a plain FIFO scheduler is provided as a
baseline and for the scheduling ablation.
"""

from __future__ import annotations

from typing import List, Protocol

from ..dram.device import DramDevice
from .queue import MrqEntry


class Scheduler(Protocol):
    """Picks which ready MRQ entry to issue next."""

    def select(self, ready: List[MrqEntry], device: DramDevice, now: int) -> MrqEntry:
        """Choose one entry from ``ready`` (never empty)."""
        ...  # pragma: no cover - protocol definition


class FcfsScheduler:
    """First-come-first-serve: always the oldest ready request."""

    name = "fcfs"
    #: Stateless: picking the sole ready entry needs no scheduler call.
    single_trivial = True

    def select(self, ready: List[MrqEntry], device: DramDevice, now: int) -> MrqEntry:
        return min(ready, key=lambda e: e.arrival)

    def capture_state(self) -> dict:
        return {"v": 1}

    def restore_state(self, state: dict) -> None:
        from ..common.versioning import check_state_version

        check_state_version(state, 1, "FcfsScheduler")


class FrFcfsScheduler:
    """First-ready FCFS: oldest row-buffer *hit* first, else oldest.

    Row-hit status is probed against the live row-buffer cache state, so
    multi-entry row-buffer caches automatically widen the set of hits the
    scheduler can exploit.
    """

    name = "fr-fcfs"
    #: Stateless: picking the sole ready entry needs no scheduler call.
    single_trivial = True

    def select(self, ready: List[MrqEntry], device: DramDevice, now: int) -> MrqEntry:
        best_hit: MrqEntry | None = None
        oldest: MrqEntry | None = None
        for entry in ready:
            if oldest is None or entry.arrival < oldest.arrival:
                oldest = entry
            bank = entry.bank
            if bank is None:
                coords = entry.coords
                bank = device.bank(coords.rank, coords.bank)
            if bank.is_row_open(entry.coords.row):
                if best_hit is None or entry.arrival < best_hit.arrival:
                    best_hit = entry
        assert oldest is not None
        return best_hit if best_hit is not None else oldest

    def capture_state(self) -> dict:
        return {"v": 1}

    def restore_state(self, state: dict) -> None:
        from ..common.versioning import check_state_version

        check_state_version(state, 1, "FrFcfsScheduler")


class WriteDrainScheduler:
    """FR-FCFS with read priority and batched write draining.

    Reads are latency-critical (they block cores); writes/writebacks are
    posted.  This scheduler serves reads first (row hits first among
    them) and only turns to writes when none are pending or when the
    backlog of writes crosses a high watermark, at which point it drains
    them in a burst down to a low watermark — the standard technique to
    avoid wasting row-buffer locality on interleaved write turnarounds.
    """

    name = "frfcfs-writedrain"

    def __init__(self, high_watermark: int = 12, low_watermark: int = 4) -> None:
        if not 0 <= low_watermark < high_watermark:
            raise ValueError("need 0 <= low watermark < high watermark")
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self._draining = False
        self._inner = FrFcfsScheduler()

    def select(self, ready: List[MrqEntry], device: DramDevice, now: int) -> MrqEntry:
        reads = [e for e in ready if not e.request.is_write]
        writes = [e for e in ready if e.request.is_write]
        if self._draining:
            if len(writes) <= self.low_watermark:
                self._draining = False
        elif len(writes) >= self.high_watermark:
            self._draining = True
        if self._draining and writes:
            return self._inner.select(writes, device, now)
        if reads:
            return self._inner.select(reads, device, now)
        return self._inner.select(writes, device, now)

    def capture_state(self) -> dict:
        return {"v": 1, "draining": self._draining}

    def restore_state(self, state: dict) -> None:
        from ..common.versioning import check_state_version

        check_state_version(state, 1, "WriteDrainScheduler")
        self._draining = state["draining"]


class BatchScheduler:
    """Parallelism-aware batching (PAR-BS-lite) for multiprogram fairness.

    FR-FCFS can starve random-access programs behind streaming ones
    (streams always have a row hit ready).  Batching bounds that: the
    scheduler snapshots the currently-queued requests as a *batch* and
    serves the whole batch (row hits first within it) before admitting
    newer requests.  No request waits for more than one batch of others.
    """

    name = "batch"

    def __init__(self, max_batch: int = 16) -> None:
        if max_batch < 1:
            raise ValueError("batch size must be >= 1")
        self.max_batch = max_batch
        self._batch_ids: set = set()
        self._inner = FrFcfsScheduler()

    def select(self, ready: List[MrqEntry], device: DramDevice, now: int) -> MrqEntry:
        current = [e for e in ready if e.request.req_id in self._batch_ids]
        if not current:
            # Batch exhausted (or first call): form a new one from the
            # oldest queued requests.
            ordered = sorted(ready, key=lambda e: e.arrival)
            batch = ordered[: self.max_batch]
            self._batch_ids = {e.request.req_id for e in batch}
            current = batch
        chosen = self._inner.select(current, device, now)
        self._batch_ids.discard(chosen.request.req_id)
        return chosen

    def capture_state(self) -> dict:
        return {"v": 1, "batch_ids": sorted(self._batch_ids)}

    def restore_state(self, state: dict) -> None:
        from ..common.versioning import check_state_version

        check_state_version(state, 1, "BatchScheduler")
        self._batch_ids = set(state["batch_ids"])


def make_scheduler(name: str) -> Scheduler:
    """Scheduler factory: "fcfs" | "fr-fcfs" | "frfcfs-writedrain" | "batch"."""
    if name == "fcfs":
        return FcfsScheduler()
    if name == "fr-fcfs":
        return FrFcfsScheduler()
    if name == "frfcfs-writedrain":
        return WriteDrainScheduler()
    if name == "batch":
        return BatchScheduler()
    raise ValueError(f"unknown scheduler {name!r}")
