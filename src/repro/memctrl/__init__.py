"""Memory controllers: request queues, schedulers, address interleaving."""

from .controller import MemoryController
from .mapping import AddressMapping, DramCoordinates
from .memsys import MainMemory
from .queue import MemoryRequestQueue, MrqEntry
from .schedulers import FcfsScheduler, FrFcfsScheduler, Scheduler, make_scheduler

__all__ = [
    "AddressMapping",
    "DramCoordinates",
    "FcfsScheduler",
    "FrFcfsScheduler",
    "MainMemory",
    "MemoryController",
    "MemoryRequestQueue",
    "MrqEntry",
    "Scheduler",
    "make_scheduler",
]
