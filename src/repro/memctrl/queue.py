"""The Memory Request Queue (MRQ).

The paper keeps the *aggregate* MRQ capacity constant at 32 entries across
all controllers: one MC gets a 32-entry queue, four MCs get 8 entries each
(Section 4.1).

The queue is stored structure-of-arrays: alongside the ``MrqEntry``
handles (which schedulers, checkers, and tests consume) it maintains
parallel columns of the fields the controller's ready-scan touches every
pump — bank object, row, arrival cycle.  The scalar pump and the fused
drain both scan the columns with plain attribute loads instead of
chasing per-entry objects; the entry list stays the source of truth for
everything else.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.request import MemoryRequest
from .mapping import DramCoordinates


class MrqEntry:
    """One queued memory request plus its decoded DRAM coordinates.

    ``bank`` caches the :class:`~repro.dram.bank.Bank` object the
    coordinates resolve to — bank identity is fixed for the entry's
    lifetime, and the controller's ready-scan probes it every pump.
    """

    __slots__ = ("request", "coords", "arrival", "bank")

    def __init__(
        self,
        request: MemoryRequest,
        coords: DramCoordinates,
        arrival: int,
        bank=None,
    ):
        self.request = request
        self.coords = coords
        self.arrival = arrival
        self.bank = bank

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MrqEntry req={self.request.req_id} r{self.coords.rank}b{self.coords.bank} t={self.arrival}>"


class MemoryRequestQueue:
    """Bounded FIFO-ordered pool the scheduler picks from."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("MRQ capacity must be >= 1")
        self.capacity = capacity
        self._entries: List[MrqEntry] = []
        # Parallel columns, index-aligned with _entries.
        self._banks: List = []
        self._rows: List[int] = []
        self._arrivals: List[int] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def entries(self) -> List[MrqEntry]:
        """Entries in arrival order (the scheduler may pick any of them)."""
        return self._entries

    @property
    def banks(self) -> List:
        """Bank column, index-aligned with :attr:`entries`."""
        return self._banks

    @property
    def rows(self) -> List[int]:
        """Row column, index-aligned with :attr:`entries`."""
        return self._rows

    @property
    def arrivals(self) -> List[int]:
        """Arrival-cycle column, index-aligned with :attr:`entries`."""
        return self._arrivals

    def push(
        self,
        request: MemoryRequest,
        coords: DramCoordinates,
        now: int,
        bank=None,
    ) -> Optional[MrqEntry]:
        """Append a request; returns None (rejected) when full."""
        if self.is_full:
            return None
        entry = MrqEntry(request, coords, now, bank)
        self._entries.append(entry)
        self._banks.append(bank)
        self._rows.append(coords.row)
        self._arrivals.append(now)
        return entry

    def remove(self, entry: MrqEntry) -> None:
        self.remove_at(self._entries.index(entry))

    def remove_at(self, index: int) -> MrqEntry:
        """Remove and return the entry at ``index`` (column-aligned)."""
        entry = self._entries.pop(index)
        del self._banks[index]
        del self._rows[index]
        del self._arrivals[index]
        return entry

    def occupancy(self) -> float:
        return len(self._entries) / self.capacity

    def capture_state(self, ctx) -> dict:
        """Queued entries in arrival order.

        Banks are not captured: bank identity is a pure function of the
        coordinates and is re-resolved against the restored device.
        """
        return {
            "v": 1,
            "entries": [
                (ctx.ref_request(e.request), tuple(e.coords), e.arrival)
                for e in self._entries
            ],
        }

    def restore_state(self, state: dict, ctx, device) -> None:
        from ..common.versioning import check_state_version

        check_state_version(state, 1, "MemoryRequestQueue")
        self._entries = []
        self._banks = []
        self._rows = []
        self._arrivals = []
        for req_idx, coords_tuple, arrival in state["entries"]:
            coords = DramCoordinates(*coords_tuple)
            bank = device.bank(coords.rank, coords.bank)
            entry = MrqEntry(ctx.get_request(req_idx), coords, arrival, bank)
            self._entries.append(entry)
            self._banks.append(bank)
            self._rows.append(coords.row)
            self._arrivals.append(arrival)
