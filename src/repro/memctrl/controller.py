"""The memory controller.

Each :class:`MemoryController` owns a bounded request queue, a scheduler,
a command/data channel (a :class:`~repro.interconnect.bus.Bus`), and the
:class:`~repro.dram.device.DramDevice` holding its ranks.

Issue model: the controller issues at most one DRAM command per
``quantum`` cycles (the MC clock — 2 CPU cycles when the MC runs at FSB
speed in the 2D baseline, 1 cycle on-stack).  A queued request is
*ready* when its bank can accept a command; the scheduler picks among
ready requests only, so requests to busy banks wait in the queue and
occupy MRQ capacity — which is what creates the backpressure the paper's
MSHR study depends on.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..common.histogram import LatencyHistogram
from ..common.request import MemoryRequest
from ..common.stats import StatGroup
from ..dram.device import DramDevice
from ..engine.simulator import Engine
from ..interconnect.bus import Bus
from .mapping import AddressMapping
from .queue import MemoryRequestQueue, MrqEntry
from .schedulers import FcfsScheduler, FrFcfsScheduler, Scheduler


class MemoryController:
    """One memory channel: MRQ + scheduler + bus + DRAM ranks."""

    def __init__(
        self,
        mc_id: int,
        engine: Engine,
        device: DramDevice,
        bus: Bus,
        scheduler: Scheduler,
        mapping: AddressMapping,
        queue_capacity: int = 32,
        quantum: int = 1,
        transaction_overhead: int = 0,
        stats: Optional[StatGroup] = None,
    ) -> None:
        if quantum < 1:
            raise ValueError("MC quantum must be >= 1 cycle")
        if transaction_overhead < 0:
            raise ValueError("transaction overhead cannot be negative")
        self.mc_id = mc_id
        self.engine = engine
        self.device = device
        self.bus = bus
        self.scheduler = scheduler
        self.mapping = mapping
        self.mrq = MemoryRequestQueue(queue_capacity)
        # Stateless schedulers pick the sole ready entry trivially; the
        # stateful ones (write-drain, batch) must see every call.
        self._scheduler_single_trivial = getattr(
            scheduler, "single_trivial", False
        )
        self.quantum = quantum
        # Cycles the MC front end is tied up per scheduled transaction
        # (arbitration, command sequencing, completion bookkeeping).
        # This is the per-channel serialization that makes additional
        # memory controllers valuable (Section 4.1) even when the raw
        # data bus is not saturated.
        self.transaction_overhead = transaction_overhead
        self._issue_gap = max(quantum, transaction_overhead)
        # Distribution of read service latencies (MRQ arrival -> data at
        # the requester), for tail analysis.
        self.read_latency = LatencyHistogram()
        self.stats = stats if stats is not None else StatGroup(f"mc{mc_id}")
        # Bound counter slots for the per-request enqueue/issue paths.
        self._c_mrq_accepts = self.stats.counter("mrq_accepts")
        self._c_mrq_rejections = self.stats.counter("mrq_rejections")
        self._c_mrq_occupancy_sum = self.stats.counter("mrq_occupancy_sum")
        self._c_issued = self.stats.counter("issued")
        self._c_queue_wait_cycles = self.stats.counter("queue_wait_cycles")
        self._c_row_hits = self.stats.counter("row_hits")
        self._c_row_misses = self.stats.counter("row_misses")
        self.line_size = mapping.line_size
        self._next_issue_time = 0
        self._pump_event = None
        self._space_waiters: Deque[Callable[[], None]] = deque()
        # RAS seam (repro.ras): None on a fault-free machine, so the
        # request path below takes only never-true attribute branches.
        self.ras = None
        # Fused-drain machinery (off by default; the Machine enables it
        # only on eligible configurations — see enable_fused_drain and
        # docs/performance.md).  The break/window tallies are plain
        # attributes, never registry counters: the stats dump is what
        # the scalar-vs-fused differential diffs, and it must stay
        # bit-identical while these numbers necessarily differ.
        self._fused_enabled = False
        self._fuse_state = None  # None=unresolved, False=ineligible, else mode
        self._fuse_fails = 0
        self._fuse_skip = 0
        self._fs_windows = 0
        self._fs_fused_issues = 0
        self._fs_scalar_pumps = 0
        self._fuse_breaks: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Enqueue side (called by the L2 miss path / writeback path)
    # ------------------------------------------------------------------
    def enqueue(self, request: MemoryRequest) -> bool:
        """Queue a request; False when the MRQ is full (caller must wait)."""
        coords = self.mapping.decompose(request.addr)
        if self.ras is not None:
            coords = self.ras.map_coords(self.mc_id, coords)
        bank = self.device.bank(coords.rank, coords.bank)
        entry = self.mrq.push(request, coords, self.engine.now, bank)
        if entry is None:
            self._c_mrq_rejections.value += 1.0
            return False
        self._c_mrq_accepts.value += 1.0
        self._c_mrq_occupancy_sum.value += len(self.mrq)
        self._schedule_pump(self.engine.now)
        return True

    def wait_for_space(self, callback: Callable[[], None]) -> None:
        """Register a one-shot callback fired when an MRQ slot frees up."""
        self._space_waiters.append(callback)

    # ------------------------------------------------------------------
    # Issue side
    # ------------------------------------------------------------------
    def _schedule_pump(self, at: int) -> None:
        at = max(at, self._next_issue_time)
        if self._pump_event is not None:
            if self._pump_event.time <= at:
                return
            self._pump_event.cancel()
        self._pump_event = self.engine.schedule_at(at, self._pump)

    def _pump(self) -> None:
        self._pump_event = None
        now = self.engine.now
        if now < self._next_issue_time:
            self._schedule_pump(self._next_issue_time)
            return
        if not self.mrq.entries:
            return
        if self._fused_enabled and self.ras is None and not self._space_waiters:
            skip = self._fuse_skip
            if skip:
                self._fuse_skip = skip - 1
            elif self._fused_drain(now):
                self._fuse_fails = 0
                return
            else:
                fails = self._fuse_fails + 1
                self._fuse_fails = fails
                if fails >= 4:
                    self._fuse_skip = 64 if fails >= 16 else 4 * fails
        self._fs_scalar_pumps += 1
        self._scalar_pump(now)

    def _scalar_pump(self, now: int) -> None:
        entries = self.mrq.entries
        ready = []
        next_ready = None
        for entry in entries:
            start = entry.bank.earliest_start(now)
            if start <= now:
                ready.append(entry)
            elif next_ready is None or start < next_ready:
                next_ready = start
        if not ready:
            if next_ready is not None:
                self._schedule_pump(next_ready)
            return
        if len(ready) == 1 and self._scheduler_single_trivial:
            entry = ready[0]
        else:
            entry = self.scheduler.select(ready, self.device, now)
        self.mrq.remove(entry)
        self._issue(entry, now)
        self._next_issue_time = now + self._issue_gap
        if not self.mrq.is_empty:
            self._schedule_pump(self._next_issue_time)
        self._release_waiters()

    # ------------------------------------------------------------------
    # Fused drain (batched miss path)
    # ------------------------------------------------------------------
    def enable_fused_drain(self) -> None:
        """Opt this controller into the batched miss-path drain.

        The drain still proves, per attempt, that a quiescent window
        exists and that the configuration is replayable (stateless
        arbiter, engine introspection hooks) before committing to it —
        any failed precondition falls back to the scalar pump with
        exponential backoff, exactly as the core-side fused dispatch.
        """
        self._fused_enabled = True
        self._fuse_state = None

    def disable_fused_drain(self) -> None:
        self._fused_enabled = False

    def fused_stats(self) -> Dict:
        """Plain (non-registry) drain statistics, for ``repro profile``."""
        return {
            "enabled": self._fused_enabled,
            "windows": self._fs_windows,
            "fused_issues": self._fs_fused_issues,
            "scalar_pumps": self._fs_scalar_pumps,
            "breaks": dict(sorted(self._fuse_breaks.items())),
        }

    def _fuse_break(self, reason: str) -> None:
        breaks = self._fuse_breaks
        breaks[reason] = breaks.get(reason, 0) + 1

    def _fuse_eligible(self):
        """Static eligibility: engine hooks + a stateless arbiter.

        Resolved lazily at the first pump attempt (after any validation
        seams have wrapped the instance) and cached; returns the inline
        arbitration mode or False.
        """
        engine = self.engine
        for attr in ("cycle_quiescent", "peek_next_time", "run_deadline"):
            if not hasattr(engine, attr):
                return False
        # Only the stateless arbiters can be replayed inline; the
        # stateful ones (write-drain, batch) must see every select().
        scheduler_type = type(self.scheduler)
        if scheduler_type is FrFcfsScheduler:
            return "fr-fcfs"
        if scheduler_type is FcfsScheduler:
            return "fcfs"
        return False

    def _fused_drain(self, t0: int) -> bool:
        """Drain the MRQ analytically inside a proven-quiescent window.

        Replays the scalar pump cadence in virtual time ``vt``: the
        engine proves no foreign event fires in ``[t0, barrier)``, every
        cycle in the window is refresh-blackout-free (so a bank is ready
        exactly when ``_bank_ready <= vt``), and completions issued by
        the drain itself shrink the barrier — so each virtual pump is
        bit-identical to the scalar pump event it replaces, including
        the exact wake-up event left behind on exit.  Returns False
        *before any state change* when a precondition fails; the caller
        then runs the scalar pump.
        """
        mode = self._fuse_state
        if mode is None:
            mode = self._fuse_eligible()
            self._fuse_state = mode
        if not mode:
            self._fuse_break("ineligible")
            return False
        mrq = self.mrq
        entries = mrq.entries
        if len(entries) < 2:
            self._fuse_break("shallow-queue")
            return False
        engine = self.engine
        if not engine.cycle_quiescent():
            self._fuse_break("cycle-busy")
            return False
        limit = getattr(engine, "horizon", 512) - 1
        wend = engine.peek_next_time(limit)
        barrier = (t0 + limit + 1) if wend is None else wend
        deadline = engine.run_deadline
        if deadline is not None and barrier > deadline + 1:
            barrier = deadline + 1
        blackouts = {}
        for rank in self.device.ranks:
            refresh = rank.refresh
            blackout = refresh.next_blackout_start(t0)
            blackouts[refresh] = blackout
            if blackout < barrier:
                barrier = blackout
        gap = self._issue_gap
        if barrier - t0 <= gap:
            # At most one virtual pump would fit: the scalar pump does
            # the same work for less setup.  Covers both short event
            # windows and t0 sitting inside a refresh blackout.
            self._fuse_break("window-short")
            return False
        frfcfs = mode == "fr-fcfs"
        issue = self._issue
        banks = mrq.banks
        rows = mrq.rows
        vt = t0
        issued = 0
        # Inline read-issue fast path: legal only while every seam it
        # would bypass is un-instrumented (no wrapped _issue on this
        # controller, no wrapped transfer on the bus; wrapped banks are
        # re-checked per entry).  It reproduces _issue's read branch with
        # the device dispatch inlined, the bus reservation open-coded
        # against a locally tracked free_at, and every counter batched
        # into integer accumulators flushed once per window — exact
        # because all increments are integer-valued and well inside
        # float's exact range, so the deferred sums are bit-identical.
        bus = self.bus
        fast = "_issue" not in self.__dict__ and "transfer" not in bus.__dict__
        if fast:
            # Inside [t0, blackout) earliest_available is the identity
            # and the epoch is constant (refresh.py docstring), so a
            # bank whose _epoch already matches can take the row-hit
            # branch of access() without calling it.
            for refresh in blackouts:
                blackouts[refresh] = (blackouts[refresh], refresh.epoch(t0))
        wire = bus.wire_latency
        beat = bus.cycles_per_beat
        line = self.line_size
        occupancy = bus.occupancy_cycles(line)
        bus_free = bus._free_at
        schedule_at = engine.schedule_at
        record_latency = self.read_latency.record
        fast_issued = 0
        wait_sum = 0
        hit_sum = 0
        miss_sum = 0
        queue_sum = 0
        self._fs_windows += 1
        while True:
            n = len(entries)
            # Ready scan over the queue columns: inside the window
            # earliest_start degenerates to _bank_ready (no blackout can
            # push it), so readiness is a plain attribute compare.
            pick = -1
            if frfcfs:
                # First ready entry in arrival order whose row is open
                # (the oldest row hit), else the oldest ready entry.
                # Probes the row-buffer dict directly (same contents
                # check as RowBufferCache.__contains__, sans the call).
                for i in range(n):
                    if banks[i]._bank_ready <= vt:
                        if pick < 0:
                            pick = i
                        if rows[i] in banks[i].row_buffers._entries:
                            pick = i
                            break
            else:
                for i in range(n):
                    if banks[i]._bank_ready <= vt:
                        pick = i
                        break
            if pick < 0:
                # Nothing ready at vt.  The earliest bank-ready time is
                # exactly the scalar pump's next_ready while it stays
                # inside the blackout-free window; advance virtually if
                # it does, otherwise leave the precise wake-up event the
                # scalar pump would have left and stop.
                m = banks[0]._bank_ready
                for i in range(1, n):
                    ready_at = banks[i]._bank_ready
                    if ready_at < m:
                        m = ready_at
                if m < barrier:
                    vt = m
                    continue
                next_ready = None
                for entry in entries:
                    start = entry.bank.earliest_start(vt)
                    if next_ready is None or start < next_ready:
                        next_ready = start
                self._schedule_pump(next_ready)
                break
            row = rows[pick]
            entry = entries[pick]
            mrq.remove_at(pick)
            bank = entry.bank
            request = entry.request
            issued += 1
            if (
                fast
                and not request.is_write
                and "access" not in bank.__dict__
            ):
                request.issued_to_dram_at = vt
                fast_issued += 1
                wait_sum += vt - entry.arrival
                cmd = vt + wire
                info = blackouts.get(bank.refresh)
                buffered = bank.row_buffers._entries
                if (
                    info is not None
                    and cmd < info[0]
                    and bank._epoch == info[1]
                    and bank.page_policy == "open"
                    and row in buffered
                ):
                    # Inline row hit: begin == cmd (blackout-free span,
                    # epoch current, bank ready), so access() collapses
                    # to the MRU touch, the CAS/CCD updates and a hit
                    # count.
                    buffered.move_to_end(row)
                    bt = bank.timing
                    data_time = cmd + bt.t_cas
                    bank._bank_ready = cmd + bt.t_ccd
                    bank._c_row_hits.value += 1.0
                    hit = True
                else:
                    data_time, hit = bank.access(cmd, row, False)
                request.row_buffer_hit = hit
                if hit:
                    hit_sum += 1
                else:
                    miss_sum += 1
                start = data_time if data_time > bus_free else bus_free
                bus_free = start + occupancy
                if start > data_time:
                    queue_sum += start - data_time
                completion = start + beat + wire
                record_latency(completion - entry.arrival)
                schedule_at(completion, request.complete, completion)
            else:
                bus._free_at = bus_free
                completion = issue(entry, vt)
                bus_free = bus._free_at
                if completion is None:
                    # A wrapper swallowed the completion time: the window
                    # can no longer be bounded, so stop after this issue —
                    # the scalar pump's post-issue state is exactly ours.
                    completion = vt + 1
            if completion < barrier:
                barrier = completion
            cand = vt + gap
            self._next_issue_time = cand
            if not entries:
                # Queue drained: the scalar pump leaves no wake-up event
                # in this state either (the next enqueue schedules one).
                break
            if cand >= barrier:
                self._schedule_pump(cand)
                break
            vt = cand
        bus._free_at = bus_free
        if fast_issued:
            self._c_issued.value += float(fast_issued)
            self._c_queue_wait_cycles.value += float(wait_sum)
            self._c_row_hits.value += float(hit_sum)
            self._c_row_misses.value += float(miss_sum)
            bus._c_transfers.value += float(fast_issued)
            bus._c_busy_cycles.value += float(fast_issued * occupancy)
            bus._c_bytes.value += float(fast_issued * line)
            if queue_sum:
                bus._c_queue_cycles.value += float(queue_sum)
        self._fs_fused_issues += issued
        return True

    def _release_waiters(self) -> None:
        while self._space_waiters and not self.mrq.is_full:
            waiter = self._space_waiters.popleft()
            waiter()

    def _issue(self, entry: MrqEntry, now: int) -> int:
        """Issue one entry; returns the completion-event time.

        The return value lets the fused drain bound its window by the
        completions it schedules itself (the validation seam in
        :mod:`repro.validate.hooks` forwards it when the method is
        wrapped).
        """
        request = entry.request
        coords = entry.coords
        request.issued_to_dram_at = now
        self._c_issued.value += 1.0
        self._c_queue_wait_cycles.value += now - entry.arrival
        if request.is_write:
            # Write data crosses the channel first, then is written into
            # the bank (or its row buffer).  The request completes when
            # the bank has accepted the data (write-recovery is handled
            # inside the bank's ready times).
            _, data_arrival = self.bus.transfer(self.line_size, now)
            done, hit = self.device.access(
                coords.rank, coords.bank, coords.row, data_arrival, is_write=True
            )
            self._note_row_outcome(request, hit)
            if self.ras is not None:
                self.ras.on_write(self, coords, request)
            self.engine.schedule_at(done, request.complete, done)
            return done
        else:
            # Reads: command propagates to the device, the bank produces
            # data, then the data crosses the channel back to the MC.
            # Delivery is critical-word-first (Section 3): the requester
            # unblocks after the first beat, while the bus stays occupied
            # for the full line transfer.
            cmd_arrival = now + self.bus.wire_latency
            data_time, hit = self.device.access(
                coords.rank, coords.bank, coords.row, cmd_arrival, is_write=False
            )
            self._note_row_outcome(request, hit)
            if self.ras is not None:
                # ECC check/correct/retry may delay (or poison) the data
                # before it crosses the channel back to the MC.
                data_time = self.ras.on_read(
                    self, coords, request, cmd_arrival, data_time
                )
            start, _ = self.bus.transfer(self.line_size, data_time)
            first_beat = start + self.bus.cycles_per_beat + self.bus.wire_latency
            self.read_latency.record(first_beat - entry.arrival)
            self.engine.schedule_at(first_beat, request.complete, first_beat)
            return first_beat

    def _note_row_outcome(self, request: MemoryRequest, hit: bool) -> None:
        request.row_buffer_hit = hit
        if hit:
            self._c_row_hits.value += 1.0
        else:
            self._c_row_misses.value += 1.0

    # ------------------------------------------------------------------
    # Snapshot seam
    # ------------------------------------------------------------------
    def capture_state(self, ctx) -> dict:
        """Everything this channel owns: MRQ, device, bus, scheduler,
        pump/backoff machinery, and the read-latency distribution."""
        return {
            "v": 1,
            "mrq": self.mrq.capture_state(ctx),
            "device": self.device.capture_state(),
            "bus": self.bus.capture_state(),
            "scheduler": self.scheduler.capture_state(),
            "read_latency": self.read_latency.capture_state(),
            "next_issue_time": self._next_issue_time,
            "pump_event": (
                None
                if self._pump_event is None
                else ctx.ref_event(self._pump_event)
            ),
            "space_waiters": [
                ctx.encode_callback(cb) for cb in self._space_waiters
            ],
            "fused_enabled": self._fused_enabled,
            "fuse_state": self._fuse_state,
            "fuse_fails": self._fuse_fails,
            "fuse_skip": self._fuse_skip,
            "fs_windows": self._fs_windows,
            "fs_fused_issues": self._fs_fused_issues,
            "fs_scalar_pumps": self._fs_scalar_pumps,
            "fuse_breaks": list(self._fuse_breaks.items()),
        }

    def restore_state(self, state: dict, ctx) -> None:
        from ..common.versioning import check_state_version

        check_state_version(state, 1, "MemoryController")
        self.device.restore_state(state["device"])
        self.mrq.restore_state(state["mrq"], ctx, self.device)
        self.bus.restore_state(state["bus"])
        self.scheduler.restore_state(state["scheduler"])
        self.read_latency.restore_state(state["read_latency"])
        self._next_issue_time = state["next_issue_time"]
        self._pump_event = (
            None
            if state["pump_event"] is None
            else ctx.get_event(state["pump_event"])
        )
        self._space_waiters = deque(
            ctx.decode_callback(enc) for enc in state["space_waiters"]
        )
        self._fused_enabled = state["fused_enabled"]
        self._fuse_state = state["fuse_state"]
        self._fuse_fails = state["fuse_fails"]
        self._fuse_skip = state["fuse_skip"]
        self._fs_windows = state["fs_windows"]
        self._fs_fused_issues = state["fs_fused_issues"]
        self._fs_scalar_pumps = state["fs_scalar_pumps"]
        self._fuse_breaks = dict(state["fuse_breaks"])
