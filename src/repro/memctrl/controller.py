"""The memory controller.

Each :class:`MemoryController` owns a bounded request queue, a scheduler,
a command/data channel (a :class:`~repro.interconnect.bus.Bus`), and the
:class:`~repro.dram.device.DramDevice` holding its ranks.

Issue model: the controller issues at most one DRAM command per
``quantum`` cycles (the MC clock — 2 CPU cycles when the MC runs at FSB
speed in the 2D baseline, 1 cycle on-stack).  A queued request is
*ready* when its bank can accept a command; the scheduler picks among
ready requests only, so requests to busy banks wait in the queue and
occupy MRQ capacity — which is what creates the backpressure the paper's
MSHR study depends on.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..common.histogram import LatencyHistogram
from ..common.request import MemoryRequest
from ..common.stats import StatGroup
from ..dram.device import DramDevice
from ..engine.simulator import Engine
from ..interconnect.bus import Bus
from .mapping import AddressMapping
from .queue import MemoryRequestQueue, MrqEntry
from .schedulers import Scheduler


class MemoryController:
    """One memory channel: MRQ + scheduler + bus + DRAM ranks."""

    def __init__(
        self,
        mc_id: int,
        engine: Engine,
        device: DramDevice,
        bus: Bus,
        scheduler: Scheduler,
        mapping: AddressMapping,
        queue_capacity: int = 32,
        quantum: int = 1,
        transaction_overhead: int = 0,
        stats: Optional[StatGroup] = None,
    ) -> None:
        if quantum < 1:
            raise ValueError("MC quantum must be >= 1 cycle")
        if transaction_overhead < 0:
            raise ValueError("transaction overhead cannot be negative")
        self.mc_id = mc_id
        self.engine = engine
        self.device = device
        self.bus = bus
        self.scheduler = scheduler
        self.mapping = mapping
        self.mrq = MemoryRequestQueue(queue_capacity)
        # Stateless schedulers pick the sole ready entry trivially; the
        # stateful ones (write-drain, batch) must see every call.
        self._scheduler_single_trivial = getattr(
            scheduler, "single_trivial", False
        )
        self.quantum = quantum
        # Cycles the MC front end is tied up per scheduled transaction
        # (arbitration, command sequencing, completion bookkeeping).
        # This is the per-channel serialization that makes additional
        # memory controllers valuable (Section 4.1) even when the raw
        # data bus is not saturated.
        self.transaction_overhead = transaction_overhead
        self._issue_gap = max(quantum, transaction_overhead)
        # Distribution of read service latencies (MRQ arrival -> data at
        # the requester), for tail analysis.
        self.read_latency = LatencyHistogram()
        self.stats = stats if stats is not None else StatGroup(f"mc{mc_id}")
        # Bound counter slots for the per-request enqueue/issue paths.
        self._c_mrq_accepts = self.stats.counter("mrq_accepts")
        self._c_mrq_rejections = self.stats.counter("mrq_rejections")
        self._c_mrq_occupancy_sum = self.stats.counter("mrq_occupancy_sum")
        self._c_issued = self.stats.counter("issued")
        self._c_queue_wait_cycles = self.stats.counter("queue_wait_cycles")
        self._c_row_hits = self.stats.counter("row_hits")
        self._c_row_misses = self.stats.counter("row_misses")
        self.line_size = mapping.line_size
        self._next_issue_time = 0
        self._pump_event = None
        self._space_waiters: Deque[Callable[[], None]] = deque()
        # RAS seam (repro.ras): None on a fault-free machine, so the
        # request path below takes only never-true attribute branches.
        self.ras = None

    # ------------------------------------------------------------------
    # Enqueue side (called by the L2 miss path / writeback path)
    # ------------------------------------------------------------------
    def enqueue(self, request: MemoryRequest) -> bool:
        """Queue a request; False when the MRQ is full (caller must wait)."""
        coords = self.mapping.decompose(request.addr)
        if self.ras is not None:
            coords = self.ras.map_coords(self.mc_id, coords)
        bank = self.device.bank(coords.rank, coords.bank)
        entry = self.mrq.push(request, coords, self.engine.now, bank)
        if entry is None:
            self._c_mrq_rejections.value += 1.0
            return False
        self._c_mrq_accepts.value += 1.0
        self._c_mrq_occupancy_sum.value += len(self.mrq)
        self._schedule_pump(self.engine.now)
        return True

    def wait_for_space(self, callback: Callable[[], None]) -> None:
        """Register a one-shot callback fired when an MRQ slot frees up."""
        self._space_waiters.append(callback)

    # ------------------------------------------------------------------
    # Issue side
    # ------------------------------------------------------------------
    def _schedule_pump(self, at: int) -> None:
        at = max(at, self._next_issue_time)
        if self._pump_event is not None:
            if self._pump_event.time <= at:
                return
            self._pump_event.cancel()
        self._pump_event = self.engine.schedule_at(at, self._pump)

    def _pump(self) -> None:
        self._pump_event = None
        now = self.engine.now
        if now < self._next_issue_time:
            self._schedule_pump(self._next_issue_time)
            return
        entries = self.mrq.entries
        if not entries:
            return
        ready = []
        next_ready = None
        for entry in entries:
            start = entry.bank.earliest_start(now)
            if start <= now:
                ready.append(entry)
            elif next_ready is None or start < next_ready:
                next_ready = start
        if not ready:
            if next_ready is not None:
                self._schedule_pump(next_ready)
            return
        if len(ready) == 1 and self._scheduler_single_trivial:
            entry = ready[0]
        else:
            entry = self.scheduler.select(ready, self.device, now)
        self.mrq.remove(entry)
        self._issue(entry, now)
        self._next_issue_time = now + self._issue_gap
        if not self.mrq.is_empty:
            self._schedule_pump(self._next_issue_time)
        self._release_waiters()

    def _release_waiters(self) -> None:
        while self._space_waiters and not self.mrq.is_full:
            waiter = self._space_waiters.popleft()
            waiter()

    def _issue(self, entry: MrqEntry, now: int) -> None:
        request = entry.request
        coords = entry.coords
        request.issued_to_dram_at = now
        self._c_issued.value += 1.0
        self._c_queue_wait_cycles.value += now - entry.arrival
        if request.is_write:
            # Write data crosses the channel first, then is written into
            # the bank (or its row buffer).  The request completes when
            # the bank has accepted the data (write-recovery is handled
            # inside the bank's ready times).
            _, data_arrival = self.bus.transfer(self.line_size, now)
            done, hit = self.device.access(
                coords.rank, coords.bank, coords.row, data_arrival, is_write=True
            )
            self._note_row_outcome(request, hit)
            if self.ras is not None:
                self.ras.on_write(self, coords, request)
            self.engine.schedule_at(done, request.complete, done)
        else:
            # Reads: command propagates to the device, the bank produces
            # data, then the data crosses the channel back to the MC.
            # Delivery is critical-word-first (Section 3): the requester
            # unblocks after the first beat, while the bus stays occupied
            # for the full line transfer.
            cmd_arrival = now + self.bus.wire_latency
            data_time, hit = self.device.access(
                coords.rank, coords.bank, coords.row, cmd_arrival, is_write=False
            )
            self._note_row_outcome(request, hit)
            if self.ras is not None:
                # ECC check/correct/retry may delay (or poison) the data
                # before it crosses the channel back to the MC.
                data_time = self.ras.on_read(
                    self, coords, request, cmd_arrival, data_time
                )
            start, _ = self.bus.transfer(self.line_size, data_time)
            first_beat = start + self.bus.cycles_per_beat + self.bus.wire_latency
            self.read_latency.record(first_beat - entry.arrival)
            self.engine.schedule_at(first_beat, request.complete, first_beat)

    def _note_row_outcome(self, request: MemoryRequest, hit: bool) -> None:
        request.row_buffer_hit = hit
        if hit:
            self._c_row_hits.value += 1.0
        else:
            self._c_row_misses.value += 1.0
