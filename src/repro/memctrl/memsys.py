"""The full main-memory system: one or more memory controllers.

``MainMemory`` instantiates ``num_mcs`` controllers, each with a private
channel (bus) and a disjoint set of ranks, per Figure 5.  The aggregate
MRQ capacity (32 in the paper) is divided evenly among controllers.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..common.request import MemoryRequest
from ..common.stats import StatRegistry
from ..dram.device import DramDevice
from ..dram.timing import DramTiming
from ..engine.simulator import Engine
from ..interconnect.bus import Bus
from .controller import MemoryController
from .mapping import AddressMapping
from .schedulers import make_scheduler


class MainMemory:
    """Facade over every memory controller and DRAM rank in the machine."""

    def __init__(
        self,
        engine: Engine,
        timing: DramTiming,
        bus_factory: Callable[[str], Bus],
        registry: Optional[StatRegistry] = None,
        num_mcs: int = 1,
        total_ranks: int = 8,
        banks_per_rank: int = 8,
        row_buffer_entries: int = 1,
        aggregate_queue_capacity: int = 32,
        scheduler: str = "fr-fcfs",
        mc_quantum: int = 1,
        mc_transaction_overhead: int = 0,
        page_size: int = 4096,
        line_size: int = 64,
        mapping_scheme: str = "page",
        page_policy: str = "open",
        first_mc_id: int = 0,
        stat_prefix: str = "",
    ) -> None:
        """``first_mc_id``/``stat_prefix`` let a second memory system
        coexist with the primary one (the stack-mode facade's off-chip
        DRAM): controllers get globally unique ``mc_id``s (transcripts
        and checker keys stay unambiguous) and every stat group is
        namespaced (e.g. ``offchip.mc1``, ``offchip.dram.rank0.bank0``)
        so the DRAM power model's ``dram.`` aggregation still counts
        only the stack.  The defaults are byte-identical to the
        single-system machine."""
        if total_ranks % num_mcs != 0:
            raise ValueError(
                f"{total_ranks} ranks cannot be split evenly over {num_mcs} MCs"
            )
        if aggregate_queue_capacity % num_mcs != 0:
            raise ValueError(
                f"aggregate MRQ capacity {aggregate_queue_capacity} must divide "
                f"evenly over {num_mcs} MCs"
            )
        self.engine = engine
        self.registry = registry if registry is not None else StatRegistry()
        ranks_per_mc = total_ranks // num_mcs
        self.mapping = AddressMapping(
            num_mcs=num_mcs,
            ranks_per_mc=ranks_per_mc,
            banks_per_rank=banks_per_rank,
            page_size=page_size,
            line_size=line_size,
            scheme=mapping_scheme,
        )
        per_mc_queue = aggregate_queue_capacity // num_mcs
        self.controllers: List[MemoryController] = []
        for local_mc in range(num_mcs):
            mc_id = first_mc_id + local_mc
            device = DramDevice(
                timing,
                num_ranks=ranks_per_mc,
                banks_per_rank=banks_per_rank,
                row_buffer_entries=row_buffer_entries,
                registry=self.registry,
                first_rank_id=local_mc * ranks_per_mc,
                page_policy=page_policy,
                stat_prefix=stat_prefix,
            )
            bus = bus_factory(f"{stat_prefix}mc{mc_id}.bus")
            self.controllers.append(
                MemoryController(
                    mc_id=mc_id,
                    engine=engine,
                    device=device,
                    bus=bus,
                    scheduler=make_scheduler(scheduler),
                    mapping=self.mapping,
                    queue_capacity=per_mc_queue,
                    quantum=mc_quantum,
                    transaction_overhead=mc_transaction_overhead,
                    stats=self.registry.group(f"{stat_prefix}mc{mc_id}"),
                )
            )

    @property
    def num_mcs(self) -> int:
        return len(self.controllers)

    @property
    def line_size(self) -> int:
        return self.mapping.line_size

    def controller_for(self, addr: int) -> MemoryController:
        """The MC owning ``addr`` under page interleaving."""
        return self.controllers[self.mapping.mc_index(addr)]

    def enqueue(self, request: MemoryRequest) -> bool:
        """Route a request to its controller; False when that MRQ is full."""
        return self.controller_for(request.addr).enqueue(request)

    def wait_for_space(self, addr: int, callback: Callable[[], None]) -> None:
        """One-shot callback when the MC owning ``addr`` frees a slot."""
        self.controller_for(addr).wait_for_space(callback)

    # -- functional-warmup path -----------------------------------------
    def functional_touch(self, addr: int, is_write: bool) -> None:
        """Update the target bank's open-row state without timing/stats."""
        coords = self.mapping.decompose(addr)
        bank = self.controllers[coords.mc].device.bank(coords.rank, coords.bank)
        bank.functional_touch(coords.row, is_write)

    def functional_fetch(self, line: int, core_id: int = 0, pc: int = 0) -> None:
        """Functional read reaching DRAM (L2/L3 miss during warmup)."""
        self.functional_touch(line, is_write=False)

    def functional_writeback(self, line: int) -> None:
        """Functional writeback reaching DRAM during warmup."""
        self.functional_touch(line, is_write=True)

    def row_hit_rate(self) -> float:
        """Aggregate DRAM row-buffer hit rate across all controllers."""
        hits = sum(mc.stats.get("row_hits") for mc in self.controllers)
        misses = sum(mc.stats.get("row_misses") for mc in self.controllers)
        total = hits + misses
        return hits / total if total else 0.0

    def capture_state(self, ctx) -> dict:
        return {
            "v": 1,
            "controllers": [mc.capture_state(ctx) for mc in self.controllers],
        }

    def restore_state(self, state: dict, ctx) -> None:
        from ..common.versioning import check_state_version

        check_state_version(state, 1, "MainMemory")
        controllers = state["controllers"]
        if len(controllers) != len(self.controllers):
            raise ValueError(
                f"snapshot has {len(controllers)} memory controllers, "
                f"machine has {len(self.controllers)}"
            )
        for mc, mc_state in zip(self.controllers, controllers):
            mc.restore_state(mc_state, ctx)
