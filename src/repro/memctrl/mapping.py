"""Physical address -> (MC, rank, bank, row) interleaving.

The paper interleaves main memory at physical-page granularity (4 KiB,
which is also the DRAM row size, Section 2.4/4.1).  Consecutive pages are
spread first across memory controllers, then across banks, then across
the ranks owned by each controller, maximizing bank- and
channel-level parallelism for streaming access patterns:

    page = addr >> 12
    mc   = page                              mod num_mcs
    bank = page // num_mcs                   mod banks_per_rank
    rank = page // (num_mcs * banks)         mod ranks_per_mc   (local)
    row  = page // (num_mcs * banks * ranks)

Every rank in the machine is owned by exactly one MC (Figure 5's bold
routing lines): rank *global* id = mc * ranks_per_mc + local rank.
"""

from __future__ import annotations

from typing import NamedTuple, Set, Tuple

from ..common.errors import HardwareFaultError
from ..common.units import is_power_of_two, log2int


class DramCoordinates(NamedTuple):
    """Where one physical address lives in the DRAM array.

    A NamedTuple rather than a dataclass: one is built per memory request
    on the controller enqueue path, and tuple construction plus C-level
    field access keeps that path cheap.
    """

    mc: int
    rank: int  # local to the owning MC
    bank: int
    row: int
    column: int


class AddressMapping:
    """Page-interleaved address decomposition."""

    def __init__(
        self,
        num_mcs: int = 1,
        ranks_per_mc: int = 8,
        banks_per_rank: int = 8,
        page_size: int = 4096,
        line_size: int = 64,
        scheme: str = "page",
    ) -> None:
        """``scheme``:

        * ``"page"`` — plain modulo interleaving (the default above).
        * ``"xor"``  — permutation-based interleaving: the bank index is
          XORed with the low row bits, so strided patterns whose period
          aliases with the bank count still spread across banks
          (requires power-of-two banks).
        """
        for name, value in (
            ("num_mcs", num_mcs),
            ("ranks_per_mc", ranks_per_mc),
            ("banks_per_rank", banks_per_rank),
        ):
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if not is_power_of_two(page_size):
            raise ValueError("page size must be a power of two")
        if not is_power_of_two(line_size) or line_size > page_size:
            raise ValueError("line size must be a power of two <= page size")
        if scheme not in ("page", "xor"):
            raise ValueError(f"unknown interleaving scheme {scheme!r}")
        if scheme == "xor" and not is_power_of_two(banks_per_rank):
            raise ValueError("xor interleaving needs power-of-two banks")
        self.scheme = scheme
        self.num_mcs = num_mcs
        self.ranks_per_mc = ranks_per_mc
        self.banks_per_rank = banks_per_rank
        self.page_size = page_size
        self.line_size = line_size
        self._page_shift = log2int(page_size)
        self._line_shift = log2int(line_size)
        self._column_mask = (page_size - 1) >> self._line_shift
        # Shift-and-mask decomposition, precomputed when every divisor is
        # a power of two (the common configurations).  The page number is
        # consumed low-bits-first in mc -> bank -> rank -> row order, so
        # the shifts accumulate left to right.
        if (
            is_power_of_two(num_mcs)
            and is_power_of_two(banks_per_rank)
            and is_power_of_two(ranks_per_mc)
        ):
            mc_bits = log2int(num_mcs)
            bank_bits = log2int(banks_per_rank)
            rank_bits = log2int(ranks_per_mc)
            self._mc_mask = num_mcs - 1
            self._bank_shift = mc_bits
            self._bank_mask = banks_per_rank - 1
            self._rank_shift = mc_bits + bank_bits
            self._rank_mask = ranks_per_mc - 1
            self._row_shift = mc_bits + bank_bits + rank_bits
            self._pow2 = True
        else:
            self._pow2 = False

    @property
    def total_ranks(self) -> int:
        return self.num_mcs * self.ranks_per_mc

    @property
    def total_banks(self) -> int:
        return self.total_ranks * self.banks_per_rank

    def mc_index(self, addr: int) -> int:
        """Which memory controller owns this address."""
        return (addr >> self._page_shift) % self.num_mcs

    def decompose(self, addr: int) -> DramCoordinates:
        """Full coordinates of ``addr``."""
        page = addr >> self._page_shift
        if self._pow2:
            column = (addr >> self._line_shift) & self._column_mask
            mc = page & self._mc_mask
            bank = (page >> self._bank_shift) & self._bank_mask
            rank = (page >> self._rank_shift) & self._rank_mask
            row = page >> self._row_shift
            if self.scheme == "xor":
                bank ^= row & self._bank_mask
            return DramCoordinates(mc, rank, bank, row, column)
        column = (addr & (self.page_size - 1)) >> self._line_shift
        mc = page % self.num_mcs
        page //= self.num_mcs
        bank = page % self.banks_per_rank
        page //= self.banks_per_rank
        rank = page % self.ranks_per_mc
        row = page // self.ranks_per_mc
        if self.scheme == "xor":
            bank ^= row % self.banks_per_rank
        return DramCoordinates(mc=mc, rank=rank, bank=bank, row=row, column=column)

    def compose(self, coords: DramCoordinates, column_offset: int = 0) -> int:
        """Inverse of :meth:`decompose` (used by tests for bijectivity)."""
        bank = coords.bank
        if self.scheme == "xor":
            bank ^= coords.row % self.banks_per_rank
        page = coords.row
        page = page * self.ranks_per_mc + coords.rank
        page = page * self.banks_per_rank + bank
        page = page * self.num_mcs + coords.mc
        addr = page << self._page_shift
        addr |= (coords.column << self._line_shift) | column_offset
        return addr


class BankRemapTable:
    """Retired-bank indirection for graceful degradation (:mod:`repro.ras`).

    When a bank accumulates uncorrectable errors past the retirement
    threshold, the RAS layer retires it here; later requests that decode
    to a retired bank are steered to the nearest healthy bank in the same
    rank (``(bank + i) mod banks_per_rank``, first live ``i``).  The
    lookup re-derives the spare from the retired set each time, so a
    spare that itself later retires is transparently skipped — no chains
    of stale forwarding entries to maintain.

    This lives beside :class:`AddressMapping` but is deliberately *not*
    consulted by :meth:`AddressMapping.decompose`: only the RAS branch of
    the controller enqueue path calls :meth:`lookup`, so the fault-free
    decode path carries zero overhead.
    """

    def __init__(self, ranks_per_mc: int, banks_per_rank: int) -> None:
        if ranks_per_mc < 1 or banks_per_rank < 1:
            raise ValueError("remap table needs at least one rank and bank")
        self.ranks_per_mc = ranks_per_mc
        self.banks_per_rank = banks_per_rank
        self._retired: Set[Tuple[int, int]] = set()
        self._live_per_rank = [banks_per_rank] * ranks_per_mc

    @property
    def has_retirements(self) -> bool:
        return bool(self._retired)

    @property
    def retired_count(self) -> int:
        return len(self._retired)

    def is_retired(self, rank: int, bank: int) -> bool:
        return (rank, bank) in self._retired

    def retire(self, rank: int, bank: int) -> bool:
        """Retire one bank; False if it was already retired.

        Raises :class:`~repro.common.errors.HardwareFaultError` when the
        retirement would leave the rank with no healthy banks — there is
        nowhere left to remap, which is an unrecoverable hardware state.
        """
        key = (rank, bank)
        if key in self._retired:
            return False
        if self._live_per_rank[rank] <= 1:
            raise HardwareFaultError(
                f"cannot retire bank {bank}: rank {rank} would have no "
                "healthy banks left",
                component=f"rank{rank}",
            )
        self._retired.add(key)
        self._live_per_rank[rank] -= 1
        return True

    def lookup(self, rank: int, bank: int) -> Tuple[int, int]:
        """Healthy (rank, bank) serving this coordinate (identity if live)."""
        if (rank, bank) not in self._retired:
            return rank, bank
        for i in range(1, self.banks_per_rank):
            spare = (bank + i) % self.banks_per_rank
            if (rank, spare) not in self._retired:
                return rank, spare
        raise HardwareFaultError(  # pragma: no cover - retire() forbids this
            f"rank {rank} has no healthy banks", component=f"rank{rank}"
        )

    def retired_banks(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(sorted(self._retired))

    # -- snapshot seam ---------------------------------------------------
    def capture_state(self) -> dict:
        return {"v": 1, "retired": sorted(self._retired)}

    def restore_state(self, state: dict) -> None:
        from ..common.versioning import check_state_version

        check_state_version(state, 1, "BankRemapTable")
        retired = {(rank, bank) for rank, bank in state["retired"]}
        for rank, bank in retired:
            if not (0 <= rank < self.ranks_per_mc
                    and 0 <= bank < self.banks_per_rank):
                raise ValueError(
                    f"retired bank ({rank}, {bank}) outside table geometry"
                )
        self._retired = retired
        live = [self.banks_per_rank] * self.ranks_per_mc
        for rank, _ in retired:
            live[rank] -= 1
        self._live_per_rank = live
