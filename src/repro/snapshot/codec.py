"""Object-graph codec for whole-machine snapshots.

Component ``capture_state()`` seams return plain-data trees, but the
live machine is a graph: one :class:`MemoryRequest` may simultaneously
sit in an MSHR entry's coalescing list, in a memory-controller queue
entry and inside a scheduled completion event's argument tuple, and its
``callback`` closes back over cache internals.  Restoring those as
*copies* would silently fork the request — the MSHR would deallocate one
object while the controller completes another.

:class:`SnapshotContext` therefore interns the four shared-identity
object kinds — :class:`MemoryRequest`, :class:`MshrEntry`,
:class:`Core._InFlight` and :class:`Event` — into side tables and
encodes every cross-reference as a ``(tag, index)`` pair.  Decoding is
two-phase: first every interned object is created as an empty shell, then
fields are filled, so mutually referential objects resolve to the same
identities they had at capture time.

Callbacks are encoded structurally, not pickled: a callback must be a
bound method of a registered component (or of an interned object), a
``functools.partial`` over such a method, or one of a short whitelist of
static functions.  Anything else — a lambda, a local closure — is a bug
in the component's snapshot seam and raises immediately at capture time,
never at restore time.
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..common.errors import SnapshotError, SnapshotFormatError
from ..common.request import AccessType, MemoryRequest
from ..cpu.core import _InFlight
from ..cpu.trace import TraceItem
from ..engine.event import Event
from ..memctrl.mapping import DramCoordinates
from ..mshr.base import MshrEntry

_NEW_REQUEST = MemoryRequest.__new__
_NEW_ENTRY = MshrEntry.__new__
_NEW_INFLIGHT = _InFlight.__new__
_NEW_EVENT = Event.__new__

#: NamedTuples that may appear inside encoded values.  They are encoded
#: by name so the decoder rebuilds the right type (plain tuples would
#: lose attribute access).
_NAMEDTUPLES: Dict[str, type] = {
    "DramCoordinates": DramCoordinates,
    "TraceItem": TraceItem,
}

#: Static (unbound) functions that are legal callbacks.
_STATIC_FUNCS: Dict[str, Callable[..., Any]] = {
    "MemoryRequest.release": MemoryRequest.release,
}
_STATIC_FUNC_NAMES = {id(fn): name for name, fn in _STATIC_FUNCS.items()}


def _tombstone(*_args: Any) -> None:  # pragma: no cover - never fires
    """Stand-in body for restored lazily-cancelled events.

    A cancelled event is skipped by the engine, never fired, but it still
    occupies queue slots and affects cancellation accounting, so it must
    be restored in place.  Its original callback may reference objects
    that no longer exist; restoring it as an inert tombstone is exact.
    """
    raise AssertionError("cancelled snapshot tombstone event fired")


class SnapshotContext:
    """Shared capture/restore state threaded through every seam.

    One context is used for exactly one capture *or* one restore; the
    interning tables are not reusable across snapshots.
    """

    def __init__(self, components: "Dict[str, Any]") -> None:
        self.components = components
        self._paths = {id(obj): path for path, obj in components.items()}
        # Capture-side interning: id(obj) -> table index.
        self._req_ids: Dict[int, int] = {}
        self._entry_ids: Dict[int, int] = {}
        self._inflight_ids: Dict[int, int] = {}
        self._event_ids: Dict[int, int] = {}
        # Both sides: index -> live object.
        self._req_objs: List[MemoryRequest] = []
        self._entry_objs: List[MshrEntry] = []
        self._inflight_objs: List[_InFlight] = []
        self._event_objs: List[Event] = []
        # Capture-side: index -> captured field state.
        self.request_states: List[Any] = []
        self.entry_states: List[Any] = []
        self.inflight_states: List[Any] = []
        self.event_states: List[Any] = []

    # ------------------------------------------------------------------
    # capture side
    # ------------------------------------------------------------------
    def ref_request(self, request: MemoryRequest) -> int:
        idx = self._req_ids.get(id(request))
        if idx is None:
            idx = len(self._req_objs)
            self._req_ids[id(request)] = idx
            self._req_objs.append(request)
            self.request_states.append(None)
            self.request_states[idx] = (
                request.req_id,
                request.addr,
                request.access.name,
                request.core_id,
                request.pc,
                request.created_at,
                request.issued_to_dram_at,
                request.completed_at,
                self.encode_value(request.callback),
                request.is_write,
                request.row_buffer_hit,
                request.mshr_probes,
                self.encode_value(request.annotations),
                request.poisoned,
                request._released,
            )
        return idx

    def ref_entry(self, entry: MshrEntry) -> int:
        idx = self._entry_ids.get(id(entry))
        if idx is None:
            idx = len(self._entry_objs)
            self._entry_ids[id(entry)] = idx
            self._entry_objs.append(entry)
            self.entry_states.append(None)
            self.entry_states[idx] = (
                entry.line_addr,
                [self.ref_request(r) for r in entry.requests],
                entry.issued,
                entry.is_prefetch,
            )
        return idx

    def ref_inflight(self, inflight: _InFlight) -> int:
        idx = self._inflight_ids.get(id(inflight))
        if idx is None:
            idx = len(self._inflight_objs)
            self._inflight_ids[id(inflight)] = idx
            self._inflight_objs.append(inflight)
            self.inflight_states.append(
                (inflight.icount, inflight.is_write, inflight.completed_time)
            )
        return idx

    def ref_event(self, event: Event) -> int:
        idx = self._event_ids.get(id(event))
        if idx is None:
            idx = len(self._event_objs)
            self._event_ids[id(event)] = idx
            self._event_objs.append(event)
            self.event_states.append(None)
            if event.cancelled:
                # Cancelled events never fire; their callback may hang on
                # to dead objects, so it is dropped, not captured.
                self.event_states[idx] = (event.time, event.seq, True, None, None)
            else:
                self.event_states[idx] = (
                    event.time,
                    event.seq,
                    False,
                    self.encode_value(event.fn),
                    self.encode_value(tuple(event.args)),
                )
        return idx

    def encode_value(self, value: Any) -> Any:
        """Encode one value (callbacks included) as plain data."""
        if value is None or type(value) in (int, float, str, bool, bytes):
            return ("v", value)
        if isinstance(value, MemoryRequest):
            return ("rq", self.ref_request(value))
        if isinstance(value, MshrEntry):
            return ("me", self.ref_entry(value))
        if isinstance(value, _InFlight):
            return ("if", self.ref_inflight(value))
        if isinstance(value, Event):
            return ("ev", self.ref_event(value))
        if isinstance(value, AccessType):
            return ("at", value.name)
        path = self._paths.get(id(value))
        if path is not None:
            return ("c", path)
        if isinstance(value, tuple):
            fields = getattr(value, "_fields", None)
            if fields is not None:
                name = type(value).__name__
                if name not in _NAMEDTUPLES:
                    raise SnapshotError(
                        f"cannot snapshot namedtuple type {name!r}; add it to "
                        "repro.snapshot.codec._NAMEDTUPLES"
                    )
                return ("nt", name, [self.encode_value(x) for x in value])
            return ("t", [self.encode_value(x) for x in value])
        if isinstance(value, list):
            return ("l", [self.encode_value(x) for x in value])
        if isinstance(value, dict):
            return (
                "d",
                [[self.encode_value(k), self.encode_value(v)] for k, v in value.items()],
            )
        if isinstance(value, functools.partial):
            return (
                "p",
                self.encode_value(value.func),
                [self.encode_value(a) for a in value.args],
                [[k, self.encode_value(v)] for k, v in sorted(value.keywords.items())],
            )
        if inspect.ismethod(value):
            return ("m", self.encode_value(value.__self__), value.__func__.__name__)
        static_name = _STATIC_FUNC_NAMES.get(id(value))
        if static_name is not None:
            return ("f", static_name)
        if isinstance(value, (int, float, str, bool, bytes)):
            # Subclass of a primitive (e.g. IntEnum that slipped through).
            raise SnapshotError(
                f"cannot snapshot primitive subclass {type(value).__name__}"
            )
        raise SnapshotError(
            f"cannot snapshot value of type {type(value).__name__}: {value!r} "
            "(component callbacks must be bound methods or partials of bound "
            "methods, not closures)"
        )

    # ``encode_callback`` is an alias kept for seam readability.
    encode_callback = encode_value

    def capture_tables(self) -> Dict[str, Any]:
        """The interned-object tables, for the snapshot payload.

        Must be taken *after* every component has been captured — the
        tables grow as components reference objects.
        """
        return {
            "requests": list(self.request_states),
            "entries": list(self.entry_states),
            "inflights": list(self.inflight_states),
            "events": list(self.event_states),
        }

    # ------------------------------------------------------------------
    # restore side
    # ------------------------------------------------------------------
    def build_objects(self, tables: Dict[str, Any]) -> None:
        """Two-phase rebuild of the interned object tables."""
        try:
            self.request_states = list(tables["requests"])
            self.entry_states = list(tables["entries"])
            self.inflight_states = list(tables["inflights"])
            self.event_states = list(tables["events"])
        except (KeyError, TypeError) as exc:
            raise SnapshotFormatError(
                f"snapshot object tables are malformed: {exc}"
            ) from exc
        # Phase 1: empty shells, so cross-references can resolve.
        self._req_objs = [_NEW_REQUEST(MemoryRequest) for _ in self.request_states]
        self._entry_objs = [_NEW_ENTRY(MshrEntry) for _ in self.entry_states]
        self._inflight_objs = [_NEW_INFLIGHT(_InFlight) for _ in self.inflight_states]
        self._event_objs = [_NEW_EVENT(Event) for _ in self.event_states]
        # Phase 2: fill fields; decode_value sees complete shell tables.
        for request, state in zip(self._req_objs, self.request_states):
            (
                request.req_id,
                request.addr,
                access_name,
                request.core_id,
                request.pc,
                request.created_at,
                request.issued_to_dram_at,
                request.completed_at,
                callback,
                request.is_write,
                request.row_buffer_hit,
                request.mshr_probes,
                annotations,
                request.poisoned,
                request._released,
            ) = state
            request.access = AccessType[access_name]
            request.callback = self.decode_value(callback)
            request.annotations = self.decode_value(annotations)
        for entry, state in zip(self._entry_objs, self.entry_states):
            line_addr, request_idxs, issued, is_prefetch = state
            entry.line_addr = line_addr
            entry.requests = [self._req_objs[i] for i in request_idxs]
            entry.issued = issued
            entry.is_prefetch = is_prefetch
        for inflight, state in zip(self._inflight_objs, self.inflight_states):
            inflight.icount, inflight.is_write, inflight.completed_time = state
        for event, state in zip(self._event_objs, self.event_states):
            time, seq, cancelled, fn, args = state
            event.time = time
            event.seq = seq
            event.cancelled = cancelled
            if cancelled:
                event.fn = _tombstone
                event.args = ()
            else:
                event.fn = self.decode_value(fn)
                event.args = self.decode_value(args)

    def get_request(self, idx: int) -> MemoryRequest:
        return self._req_objs[idx]

    def get_entry(self, idx: int) -> MshrEntry:
        return self._entry_objs[idx]

    def get_inflight(self, idx: int) -> _InFlight:
        return self._inflight_objs[idx]

    def get_event(self, idx: int) -> Event:
        return self._event_objs[idx]

    def decode_value(self, enc: Any) -> Any:
        tag = enc[0]
        if tag == "v":
            return enc[1]
        if tag == "rq":
            return self._req_objs[enc[1]]
        if tag == "me":
            return self._entry_objs[enc[1]]
        if tag == "if":
            return self._inflight_objs[enc[1]]
        if tag == "ev":
            return self._event_objs[enc[1]]
        if tag == "at":
            return AccessType[enc[1]]
        if tag == "c":
            try:
                return self.components[enc[1]]
            except KeyError:
                raise SnapshotFormatError(
                    f"snapshot references unknown component {enc[1]!r}; the "
                    "reconstructed machine does not match the captured one"
                ) from None
        if tag == "t":
            return tuple(self.decode_value(x) for x in enc[1])
        if tag == "nt":
            try:
                kind = _NAMEDTUPLES[enc[1]]
            except KeyError:
                raise SnapshotFormatError(
                    f"snapshot references unknown namedtuple {enc[1]!r}"
                ) from None
            return kind(*(self.decode_value(x) for x in enc[2]))
        if tag == "l":
            return [self.decode_value(x) for x in enc[1]]
        if tag == "d":
            return {self.decode_value(k): self.decode_value(v) for k, v in enc[1]}
        if tag == "p":
            func = self.decode_value(enc[1])
            args = tuple(self.decode_value(a) for a in enc[2])
            kwargs = {k: self.decode_value(v) for k, v in enc[3]}
            return functools.partial(func, *args, **kwargs)
        if tag == "m":
            # Resolved via getattr so instrumentation wrappers installed
            # on the reconstructed machine (validate hooks wrap methods
            # as instance attributes) are transparently picked up.
            return getattr(self.decode_value(enc[1]), enc[2])
        if tag == "f":
            try:
                return _STATIC_FUNCS[enc[1]]
            except KeyError:
                raise SnapshotFormatError(
                    f"snapshot references unknown static function {enc[1]!r}"
                ) from None
        raise SnapshotFormatError(f"unknown snapshot value tag {tag!r}")

    decode_callback = decode_value
