"""Deterministic whole-machine checkpoint/restore.

``repro.snapshot`` lets a half-finished simulation be suspended to an
atomic, checksummed file and resumed — in another process, after a
crash, or on another host — with bit-identical continued behaviour.
Three layers:

* :mod:`~repro.snapshot.format` — the crash-safe file format (magic +
  schema version + config fingerprint + checksummed payload; tmp/fsync/
  rename writes; torn or tampered files are refused, never repaired).
* :mod:`~repro.snapshot.codec` — the object-graph codec that interns
  shared-identity objects (requests, MSHR entries, in-flight ROB slots,
  scheduled events) and encodes callbacks structurally.
* :class:`repro.system.machine.Machine` — ``snapshot()`` / ``resume()``
  plus the chunked drive loop that takes periodic checkpoints at
  deterministic cycle boundaries (see :class:`SnapshotPlan`).

See ``docs/snapshot.md`` for the format, versioning policy, preemption
semantics and what is deliberately *not* captured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import (
    SnapshotConfigMismatch,
    SnapshotError,
    SnapshotFormatError,
    SnapshotPreempted,
    SnapshotSchemaError,
)
from . import preemption
from .codec import SnapshotContext
from .format import (
    SCHEMA_VERSION,
    read_snapshot_file,
    read_snapshot_header,
    write_snapshot_file,
)


@dataclass(frozen=True)
class SnapshotPlan:
    """How (and whether) a run takes periodic checkpoints.

    ``every`` sets the boundary cadence in simulated cycles; boundaries
    fall on absolute multiples of ``every``, so the schedule — and with
    it the engine's ``run(until=...)`` chunking — depends only on the
    cadence, never on where a previous run was interrupted.  That makes
    a resumed run's remaining chunk sequence identical to the oracle's.

    ``write=False`` keeps the chunk cadence without writing any files —
    used by validation oracles so interrupted and uninterrupted runs see
    the same deadline schedule.  ``preemptible`` additionally polls the
    cooperative preemption flag at each boundary and, when set, writes a
    final checkpoint and raises
    :class:`~repro.common.errors.SnapshotPreempted`.
    """

    path: Optional[str] = None
    every: int = 200_000
    write: bool = True
    preemptible: bool = False
    #: Also write a checkpoint before propagating a watchdog hang, so a
    #: stuck cell can be post-mortemed (or resumed with a larger budget).
    snapshot_on_hang: bool = True

    def __post_init__(self) -> None:
        if self.every <= 0:
            raise ValueError(f"snapshot cadence must be positive, got {self.every}")
        if self.write and self.path is None:
            raise ValueError("a writing SnapshotPlan needs a path")


__all__ = [
    "SCHEMA_VERSION",
    "SnapshotConfigMismatch",
    "SnapshotContext",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotPlan",
    "SnapshotPreempted",
    "SnapshotSchemaError",
    "preemption",
    "read_snapshot_file",
    "read_snapshot_header",
    "write_snapshot_file",
]
