"""Cooperative preemption flag for snapshot-aware workers.

A preemptible worker installs the signal handler once at startup; the
supervisor (or the platform) sends ``SIGUSR1`` to ask the worker to
yield.  The simulation drive loop polls :func:`preempt_requested` at
snapshot boundaries only — signal delivery itself never interrupts the
engine mid-event, so the checkpoint written on the way out is taken at a
deterministic cycle and the resumed run replays bit-identically.
"""

from __future__ import annotations

import signal
import threading

_flag = threading.Event()

#: Signal used to request cooperative preemption.
PREEMPT_SIGNAL = signal.SIGUSR1


def _handler(_signum, _frame) -> None:
    _flag.set()


def install_handler() -> None:
    """Install the preemption signal handler (main thread only)."""
    signal.signal(PREEMPT_SIGNAL, _handler)


def request_preemption() -> None:
    """Set the flag in-process (tests, or same-process supervisors)."""
    _flag.set()


def preempt_requested() -> bool:
    """Whether a preemption request is pending."""
    return _flag.is_set()


def clear() -> None:
    """Reset the flag (after handling a preemption, or between cells)."""
    _flag.clear()
