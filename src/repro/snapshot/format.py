"""Crash-safe snapshot file format.

A snapshot file is::

    REPRO-SNAPSHOT <schema>\\n
    <header JSON>\\n
    <payload bytes>

* The first line is a magic string carrying the schema version, so even
  a reader from a different schema can identify the file and refuse it
  with a precise error instead of a parse explosion.
* The header is one line of JSON with the config fingerprint, the
  payload length and its SHA-256, plus free-form metadata (cycle,
  workload name) used for logging only.
* The payload is the pickled plain-data state tree produced by
  :mod:`repro.snapshot.codec`.  It is *data only*: the restricted
  unpickler below refuses every global/class reference, so a tampered
  snapshot cannot execute code on load — it can only fail its checksum.

Durability: writes go to a same-directory temp file which is fsynced,
then atomically renamed over the destination (the CellJournal/ResultCache
discipline).  A crash mid-write leaves either the old snapshot or none;
a torn tail in a partially synced file is caught by the length and
checksum checks and refused, never silently resumed.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import tempfile
from typing import Any, Dict, Optional, Tuple

from ..common.errors import (
    SnapshotConfigMismatch,
    SnapshotFormatError,
    SnapshotSchemaError,
)

#: Bumped whenever the state-tree layout changes incompatibly.  There is
#: deliberately no migration machinery: a snapshot is a resume artifact,
#: not an archive format, and refusing an old one just costs a re-run.
SCHEMA_VERSION = 1

_MAGIC_PREFIX = b"REPRO-SNAPSHOT "


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that refuses every global lookup.

    The snapshot payload is a tree of builtins (dict/list/tuple/str/
    int/float/bool/bytes/None); anything that needs ``find_class`` is by
    definition not a valid payload.
    """

    def find_class(self, module: str, name: str):  # pragma: no cover - defense
        raise SnapshotFormatError(
            f"snapshot payload references {module}.{name}; "
            "payloads must be pure data"
        )

    def persistent_load(self, pid):  # pragma: no cover - defense
        raise SnapshotFormatError("snapshot payload uses persistent ids")


def encode_payload(tree: Any) -> bytes:
    """Serialize a plain-data state tree to payload bytes."""
    return pickle.dumps(tree, protocol=4)


def decode_payload(data: bytes, *, path: Optional[str] = None) -> Any:
    """Parse payload bytes back into the state tree, refusing non-data.

    Containment lives in :class:`_RestrictedUnpickler`: ``find_class``
    and ``persistent_load`` always raise, so GLOBAL/STACK_GLOBAL/INST/
    PERSID all fail before resolving anything, and the opcodes that
    could call code (REDUCE, NEWOBJ, BUILD) can never obtain a callable
    because callables only enter the stack through those refused paths
    (EXT* dies on the empty extension registry).  A byte-exact
    pickletools pre-scan used to run here as well, but it is pure
    Python and O(opcodes) — an order of magnitude slower than the
    decode itself — with no additional guarantees.
    """
    try:
        return _RestrictedUnpickler(io.BytesIO(data)).load()
    except SnapshotFormatError:
        raise
    except Exception as exc:
        raise SnapshotFormatError(
            f"snapshot payload failed to decode: {exc}", path=path
        ) from exc


def write_snapshot_file(
    path: str,
    tree: Any,
    *,
    config_fingerprint: str,
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Atomically write ``tree`` as a snapshot file at ``path``."""
    payload = encode_payload(tree)
    header = {
        "schema": SCHEMA_VERSION,
        "config_fingerprint": config_fingerprint,
        "payload_bytes": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    if meta:
        header["meta"] = dict(meta)
    blob = b"".join(
        (
            _MAGIC_PREFIX,
            str(SCHEMA_VERSION).encode("ascii"),
            b"\n",
            json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8"),
            b"\n",
            payload,
        )
    )
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".snapshot-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    # Also sync the directory entry so the rename itself is durable.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform quirk
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def read_snapshot_header(path: str) -> Dict[str, Any]:
    """Read and validate just the header of a snapshot file.

    Cheap existence/compatibility probe: verifies magic, schema and
    header shape but does not read or checksum the payload.
    """
    header, _offset = _read_header(path)
    return header


def read_snapshot_file(
    path: str,
    *,
    expected_fingerprint: Optional[str] = None,
) -> Tuple[Dict[str, Any], Any]:
    """Read, verify and decode a snapshot file.

    Returns ``(header, state_tree)``.  Raises
    :class:`SnapshotFormatError` on any torn/corrupt file,
    :class:`SnapshotSchemaError` on a version mismatch, and
    :class:`SnapshotConfigMismatch` when ``expected_fingerprint`` is
    given and differs from the recorded one.
    """
    header, offset = _read_header(path)
    if expected_fingerprint is not None and header["config_fingerprint"] != expected_fingerprint:
        raise SnapshotConfigMismatch(
            f"snapshot {path} was taken under a different configuration "
            f"(recorded {header['config_fingerprint'][:12]}..., "
            f"expected {expected_fingerprint[:12]}...)",
            path=path,
            found=header["config_fingerprint"],
            expected=expected_fingerprint,
        )
    with open(path, "rb") as handle:
        handle.seek(offset)
        payload = handle.read()
    if len(payload) != header["payload_bytes"]:
        raise SnapshotFormatError(
            f"snapshot {path} payload is {len(payload)} bytes, header "
            f"promises {header['payload_bytes']} (torn write?)",
            path=path,
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["payload_sha256"]:
        raise SnapshotFormatError(
            f"snapshot {path} payload checksum mismatch "
            f"({digest[:12]}... != {header['payload_sha256'][:12]}...)",
            path=path,
        )
    return header, decode_payload(payload, path=path)


def _read_header(path: str) -> Tuple[Dict[str, Any], int]:
    try:
        with open(path, "rb") as handle:
            magic_line = handle.readline(256)
            header_line = handle.readline(1 << 20)
            offset = handle.tell()
    except OSError as exc:
        raise SnapshotFormatError(f"cannot read snapshot {path}: {exc}", path=path) from exc
    if not magic_line.startswith(_MAGIC_PREFIX) or not magic_line.endswith(b"\n"):
        raise SnapshotFormatError(
            f"{path} is not a snapshot file (bad magic)", path=path
        )
    try:
        schema = int(magic_line[len(_MAGIC_PREFIX):].strip())
    except ValueError as exc:
        raise SnapshotFormatError(
            f"{path} has an unparsable schema marker", path=path
        ) from exc
    if schema != SCHEMA_VERSION:
        raise SnapshotSchemaError(
            f"snapshot {path} uses schema {schema}, this reader supports "
            f"{SCHEMA_VERSION}",
            path=path,
            found=schema,
            expected=SCHEMA_VERSION,
        )
    if not header_line.endswith(b"\n"):
        raise SnapshotFormatError(
            f"snapshot {path} header line is truncated", path=path
        )
    try:
        header = json.loads(header_line)
    except ValueError as exc:
        raise SnapshotFormatError(
            f"snapshot {path} header is not valid JSON", path=path
        ) from exc
    if not isinstance(header, dict):
        raise SnapshotFormatError(
            f"snapshot {path} header is not an object", path=path
        )
    for key, kind in (
        ("schema", int),
        ("config_fingerprint", str),
        ("payload_bytes", int),
        ("payload_sha256", str),
    ):
        if not isinstance(header.get(key), kind):
            raise SnapshotFormatError(
                f"snapshot {path} header is missing {key!r}", path=path
            )
    if header["schema"] != schema:
        raise SnapshotFormatError(
            f"snapshot {path} header schema disagrees with magic line", path=path
        )
    return header, offset
