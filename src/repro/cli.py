"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``list {benchmarks,mixes,configs}`` — show what is available.
* ``run --config 3d-fast --mix H1``   — simulate one workload and print
  per-core results (``--benchmarks a,b,c,d`` for a custom mix).
* ``analyze --config 2d --mix VH2``   — run once and print a bottleneck
  report.
* ``profile run --config 2d --mix H1`` — run one workload (or
  ``figure4``) in-process under cProfile and print the top hotspots
  plus the fused/scalar memory-controller window statistics.
* ``figure {4,6a,6b,7,9}``            — regenerate a figure.
* ``table {2a,2b}``                   — regenerate a table.
* ``fairness --config quad-mc``       — solo-vs-mixed fairness metrics.
* ``ras-study``                       — fault rate x ECC sweep (RAS).
* ``stack-modes``                     — stack usage-mode x capacity
  study (flat memory / L4 cache / MemCache — see docs/stack_modes.md).
* ``report --output results/``        — regenerate everything.
* ``ablation {scheduler,interleave,prefetch,replacement,mshr}``

All experiment commands accept ``--scale`` (smoke/default/large),
``--mixes`` (comma-separated) and ``--seed``, plus resilience knobs:
``--cell-timeout SECONDS`` (kill and retry hung cells),
``--retries N`` (re-attempt failed cells with exponential backoff),
``--journal PATH`` (checkpoint each completed cell), ``--resume``
(skip cells already in the journal; refuses a journal whose configs
were edited unless ``--force-resume``) and ``--snapshot-every CYCLES``
(periodic whole-machine checkpoints so interrupted cells resume
mid-run — see ``docs/snapshot.md``).  See ``docs/resilience.md``.

``run``, ``analyze`` and every experiment command also accept
``--check [names]`` to attach the runtime invariant checkers from
:mod:`repro.validate` (zero overhead when omitted).  See
``docs/validation.md``.

``run`` and every experiment command accept ``--sample [spec]`` to
replace full-detail simulation with SMARTS-style sampled simulation
(alternating functional warmup and detailed measurement intervals).
``--sample`` alone uses the tuned default plan; a spec such as
``detailed:1200,warmup:4650`` overrides individual knobs.  Results are
estimates with confidence intervals (``sample_*`` keys in saved
tables).  See the "Sampled simulation" section of
``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .common.errors import CheckViolation
from .experiments import (
    RunPolicy,
    run_figure4,
    run_ras_study,
    run_full_suite,
    run_figure6a,
    run_figure6b,
    run_figure7,
    run_figure9,
    run_interleave_ablation,
    run_mshr_org_ablation,
    run_prefetch_ablation,
    run_scheduler_ablation,
    run_table2a,
    run_table2b,
)
from .system.config import (
    SystemConfig,
    config_2d,
    config_3d,
    config_3d_fast,
    config_3d_wide,
    config_dual_mc,
    config_l4_alloy,
    config_l4_cache,
    config_memcache,
    config_quad_mc,
)
from .system.machine import run_workload
from .system.scale import get_scale
from .workloads.benchmarks import BENCHMARKS
from .workloads.mixes import MIX_ORDER, MIXES

CONFIGS: Dict[str, Callable[[], SystemConfig]] = {
    "2d": config_2d,
    "3d": config_3d,
    "3d-wide": config_3d_wide,
    "3d-fast": config_3d_fast,
    "dual-mc": config_dual_mc,
    "quad-mc": config_quad_mc,
    "l4-cache": config_l4_cache,
    "l4-alloy": config_l4_alloy,
    "memcache": config_memcache,
}


def _mixes_arg(value: Optional[str]):
    if not value:
        return None
    return [MIXES[name.strip()] for name in value.split(",")]


def _add_check_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--check", nargs="?", const="all", default=None, metavar="CHECKERS",
        help="attach runtime invariant checkers (default when given: all; "
        "or a comma-separated subset of dram-timing,mshr,queue)",
    )


def _export_check_env(args) -> None:
    """Experiment commands pass --check to workers via REPRO_CHECK."""
    if getattr(args, "check", None):
        from .experiments.runner import ENV_CHECK

        os.environ[ENV_CHECK] = args.check


def _add_sample_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sample", nargs="?", const="on", default=None, metavar="SPEC",
        help="use sampled simulation (default plan when given bare; or a "
        "spec like detailed:1200,warmup:4650,detail_warmup:400,"
        "min_intervals:8)",
    )


def _export_sample_env(args) -> None:
    """Experiment commands pass --sample to workers via REPRO_SAMPLE."""
    spec = getattr(args, "sample", None)
    if spec:
        from .sampling.plan import ENV_SAMPLE, parse_sample_spec

        parse_sample_spec(spec)  # fail fast on a malformed spec
        os.environ[ENV_SAMPLE] = spec


def _policy_from_args(args, default_name: str) -> Optional[RunPolicy]:
    """Build a RunPolicy from the resilience flags (None when unused).

    ``--resume`` without an explicit ``--journal`` defaults to
    ``results/<experiment>.journal.jsonl`` so that re-running the same
    command with ``--resume`` added picks up where it left off.
    """
    journal = args.journal
    if journal is None and args.resume:
        journal = f"results/{default_name}.journal.jsonl"
    if (
        args.cell_timeout is None
        and args.retries == 0
        and journal is None
        and not args.resume
        and args.snapshot_every is None
    ):
        return None
    return RunPolicy(
        cell_timeout=args.cell_timeout,
        retries=args.retries,
        journal_path=journal,
        resume=args.resume,
        force_resume=args.force_resume,
        snapshot_every=args.snapshot_every,
        snapshot_dir=args.snapshot_dir,
    )


def _print_failures(table) -> None:
    """Surface recorded cell failures after a degraded run."""
    failures = getattr(table, "failures", None)
    if failures:
        print(f"\nWARNING: {len(failures)} cell(s) failed:", flush=True)
        for _, failure in sorted(failures.items()):
            print(f"  {failure.describe()}")
        print("re-run with --resume to retry only the failed cells")


def _cmd_list(args) -> int:
    if args.what == "benchmarks":
        print(f"{'name':12s} {'suite':14s} {'paper MPKI':>10s}")
        for spec in sorted(
            BENCHMARKS.values(), key=lambda s: -s.paper_mpki
        ):
            print(f"{spec.name:12s} {spec.suite:14s} {spec.paper_mpki:>10.1f}")
    elif args.what == "mixes":
        print(f"{'mix':5s} {'group':6s} {'paper HMIPC':>11s}  benchmarks")
        for name in MIX_ORDER:
            mix = MIXES[name]
            print(
                f"{mix.name:5s} {mix.group:6s} {mix.paper_hmipc:>11.3f}  "
                + ", ".join(mix.benchmarks)
            )
    else:
        for name, factory in CONFIGS.items():
            config = factory()
            print(
                f"{name:10s} timing={config.dram_timing:12s} "
                f"bus={config.memory_bus:5s} MCs={config.num_mcs} "
                f"ranks={config.total_ranks} RB={config.row_buffer_entries} "
                f"MSHR/bank={config.l2_mshr_per_bank}"
            )
    return 0


def _cmd_run(args) -> int:
    from .sampling.plan import parse_sample_spec

    plan = parse_sample_spec(args.sample)
    config = CONFIGS[args.config]()
    if args.benchmarks:
        benchmarks = [b.strip() for b in args.benchmarks.split(",")]
        if len(benchmarks) != config.num_cores:
            raise SystemExit(
                f"--benchmarks needs {config.num_cores} names, "
                f"got {len(benchmarks)}"
            )
        workload_name = "custom"
    else:
        mix = MIXES[args.mix]
        benchmarks = list(mix.benchmarks)
        workload_name = mix.name
    scale = get_scale(args.scale)
    result = run_workload(
        config,
        benchmarks,
        warmup_instructions=scale.warmup_instructions,
        measure_instructions=scale.measure_instructions,
        seed=args.seed,
        workload_name=workload_name,
        checkers=args.check,
        sampling=plan,
        fused_mc=False if args.no_fused_mc else None,
    )
    print(f"config {config.name}, workload {workload_name} ({scale.name} scale)")
    if args.check:
        print(f"runtime checkers passed: {args.check}")
    if plan is not None:
        print(
            f"sampled: {int(result.extra['sample_intervals'])} intervals "
            f"x {plan.detailed} detailed instr; "
            f"IPC rel 95% CI max {result.extra['sample_rel_ci95_max']:.1%}"
        )
    for core in result.cores:
        print(
            f"  core {core.benchmark:12s} IPC {core.ipc:6.3f}  "
            f"L2 MPKI {core.l2_mpki:7.1f}"
        )
    print(f"HMIPC               {result.hmipc:.3f}")
    print(f"DRAM row-hit rate   {result.dram_row_hit_rate:.2f}")
    print(f"MSHR probes/access  {result.mshr_avg_probes:.2f}")
    print(
        "DRAM dynamic energy "
        f"{result.extra['dram_dynamic_nj_per_access']:.2f} nJ/access"
    )
    return 0


def _cmd_profile(args) -> int:
    import cProfile
    import pstats

    from .system.machine import ENV_FUSED_MC, Machine

    if args.no_fused_mc:
        # The env hatch reaches every machine the experiment builds,
        # including runner cells that never see an explicit argument.
        os.environ[ENV_FUSED_MC] = "0"
    scale = get_scale(args.scale)
    profiler = cProfile.Profile()
    fused = None
    if args.experiment == "run":
        config = CONFIGS[args.config]()
        mix = MIXES[args.mix]
        machine = Machine(
            config, list(mix.benchmarks), seed=args.seed,
            workload_name=mix.name,
        )
        profiler.enable()
        result = machine.run(
            warmup_instructions=scale.warmup_instructions,
            measure_instructions=scale.measure_instructions,
        )
        profiler.disable()
        print(
            f"profiled run: config {config.name}, workload {mix.name} "
            f"({scale.name} scale), HMIPC {result.hmipc:.3f}"
        )
        fused = [mc.fused_stats() for mc in machine.memory.controllers]
    else:
        profiler.enable()
        figure = run_figure4(
            scale=scale, mixes=_mixes_arg(args.mixes), seed=args.seed,
            workers=1,
        )
        profiler.disable()
        print(f"profiled figure4 ({scale.name} scale, in-process cells)")
        fused = figure.table

    print("\nfused memory-controller drain:")
    if isinstance(fused, list):
        for index, snap in enumerate(fused):
            if not snap["enabled"]:
                print(f"  mc{index}: drain disabled (scalar pump only)")
                continue
            breaks = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(snap["breaks"].items())
            ) or "none"
            print(
                f"  mc{index}: windows {snap['windows']}, "
                f"fused issues {snap['fused_issues']}, "
                f"scalar pumps {snap['scalar_pumps']}, breaks: {breaks}"
            )
    else:
        # Cells only surface the aggregate extras (the per-controller
        # break histograms die with each cell's machine).
        totals = {"fused_mc_windows": 0.0, "fused_mc_issues": 0.0,
                  "fused_mc_scalar_pumps": 0.0}
        armed = 0
        for cell in fused.cells.values():
            if "fused_mc_windows" in cell.extra:
                armed += 1
                for key in totals:
                    totals[key] += cell.extra.get(key, 0.0)
        if armed:
            print(
                f"  {armed} cell(s): "
                f"windows {totals['fused_mc_windows']:.0f}, "
                f"fused issues {totals['fused_mc_issues']:.0f}, "
                f"scalar pumps {totals['fused_mc_scalar_pumps']:.0f}"
            )
        else:
            print("  drain disabled in every cell (scalar pump only)")

    print(f"\ntop {args.top} functions by {args.sort}:")
    stats = pstats.Stats(profiler)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


def _cmd_figure(args) -> int:
    from .common.errors import CellFailedError

    _export_check_env(args)
    _export_sample_env(args)
    scale = get_scale(args.scale)
    mixes = _mixes_arg(args.mixes)
    seed, workers = args.seed, args.workers
    if args.which in ("7", "9"):
        name = f"figure{args.which}_{args.panel.replace('-mc', '')}-mc"
    else:
        name = f"figure{args.which}"
    policy = _policy_from_args(args, name)
    common = dict(
        scale=scale, mixes=mixes, seed=seed, workers=workers, policy=policy
    )
    if args.which == "4":
        result = run_figure4(**common)
    elif args.which == "6a":
        result = run_figure6a(**common)
    elif args.which == "6b":
        result = run_figure6b(**common)
    elif args.which == "7":
        result = run_figure7(panel=args.panel, **common)
    else:
        result = run_figure9(panel=args.panel, **common)
    try:
        print(result.format())
    except CellFailedError as exc:
        print(f"report incomplete — {exc}")
    _print_failures(getattr(result, "table", None))
    return 0


def _cmd_table(args) -> int:
    _export_check_env(args)
    _export_sample_env(args)
    scale = get_scale(args.scale)
    if args.which == "2a":
        result = run_table2a(scale=scale, seed=args.seed)
    else:
        result = run_table2b(
            scale=scale, mixes=_mixes_arg(args.mixes), seed=args.seed,
            workers=args.workers,
            policy=_policy_from_args(args, "table2b"),
        )
    print(result.format())
    return 0


def _cmd_analyze(args) -> int:
    from .experiments.analysis import analyze
    from .system.machine import Machine

    config = CONFIGS[args.config]()
    mix = MIXES[args.mix]
    scale = get_scale(args.scale)
    machine = Machine(
        config, list(mix.benchmarks), seed=args.seed, workload_name=mix.name,
        checkers=args.check,
    )
    result = machine.run(
        warmup_instructions=scale.warmup_instructions,
        measure_instructions=scale.measure_instructions,
    )
    print(f"config {config.name}, workload {mix.name}: HMIPC {result.hmipc:.3f}\n")
    print(analyze(machine).format())
    return 0


def _cmd_fairness(args) -> int:
    from .experiments.fairness import fairness_study

    result = fairness_study(
        CONFIGS[args.config](),
        MIXES[args.mix],
        scale=get_scale(args.scale),
        seed=args.seed,
    )
    print(result.format())
    return 0


def _cmd_report(args) -> int:
    _export_check_env(args)
    _export_sample_env(args)
    journal_dir = None
    if args.resume or args.journal is not None:
        # --journal names a *directory* for report runs (one journal
        # per experiment inside it).
        journal_dir = args.journal or args.output or "results"
    policy = None
    if (
        args.cell_timeout is not None
        or args.retries
        or args.resume
        or args.snapshot_every is not None
    ):
        policy = RunPolicy(
            cell_timeout=args.cell_timeout,
            retries=args.retries,
            resume=args.resume,
            force_resume=args.force_resume,
            snapshot_every=args.snapshot_every,
            snapshot_dir=args.snapshot_dir,
        )
    reports = run_full_suite(
        scale=get_scale(args.scale),
        mixes=_mixes_arg(args.mixes),
        seed=args.seed,
        workers=args.workers,
        output_dir=args.output,
        only=args.only.split(",") if args.only else None,
        policy=policy,
        journal_dir=journal_dir,
    )
    for name, text in reports.items():
        print(f"\n===== {name} =====")
        print(text)
    return 0


def _cmd_ablation(args) -> int:
    from .experiments import run_replacement_ablation

    _export_check_env(args)
    _export_sample_env(args)

    runners = {
        "scheduler": run_scheduler_ablation,
        "interleave": run_interleave_ablation,
        "prefetch": run_prefetch_ablation,
        "replacement": run_replacement_ablation,
        "mshr": run_mshr_org_ablation,
    }
    result = runners[args.which](
        scale=get_scale(args.scale),
        mixes=_mixes_arg(args.mixes),
        seed=args.seed,
        workers=args.workers,
        policy=_policy_from_args(args, f"ablation_{args.which}"),
    )
    print(result.format())
    _print_failures(getattr(result, "table", None))
    return 0


def _cmd_ras_study(args) -> int:
    from .experiments import save_table
    from .experiments.ras_study import DEFAULT_ECCS, DEFAULT_RATES
    from .ras.config import ECC_SCHEMES

    _export_check_env(args)
    _export_sample_env(args)
    if args.rates:
        rates = tuple(float(r) for r in args.rates.split(","))
    else:
        rates = DEFAULT_RATES
    if args.ecc:
        eccs = tuple(e.strip() for e in args.ecc.split(","))
        unknown = [e for e in eccs if e not in ECC_SCHEMES]
        if unknown:
            raise SystemExit(
                f"unknown ECC scheme(s) {unknown}; choose from {ECC_SCHEMES}"
            )
    else:
        eccs = DEFAULT_ECCS
    result = run_ras_study(
        scale=get_scale(args.scale),
        mixes=_mixes_arg(args.mixes),
        seed=args.seed,
        workers=args.workers,
        policy=_policy_from_args(args, "ras_study"),
        rates=rates,
        eccs=eccs,
    )
    print(result.format())
    violations = result.check_monotone()
    if violations:
        print("\nMONOTONICITY VIOLATIONS:")
        for line in violations:
            print(f"  {line}")
    if args.output:
        save_table(result.table, args.output)
        print(f"\nsaved result table to {args.output}")
    _print_failures(result.table)
    return 1 if violations else 0


def _cmd_stack_modes(args) -> int:
    from .common.units import MIB
    from .experiments import run_stack_modes, save_table
    from .experiments.stack_modes import DEFAULT_CAPACITIES

    _export_check_env(args)
    _export_sample_env(args)
    if args.capacities:
        capacities = tuple(
            int(float(c) * MIB) for c in args.capacities.split(",")
        )
    else:
        capacities = DEFAULT_CAPACITIES
    result = run_stack_modes(
        scale=get_scale(args.scale),
        mixes=_mixes_arg(args.mixes),
        seed=args.seed,
        workers=args.workers,
        capacities=capacities,
        policy=_policy_from_args(args, "stack_modes"),
    )
    print(result.format())
    if args.output:
        save_table(result.table, args.output)
        print(f"\nsaved result table to {args.output}")
    _print_failures(result.table)
    return 0


def _cmd_serve(args) -> int:
    from .service.http import ServiceServer
    from .service.service import SweepService
    from .service.supervisor import ServicePolicy

    policy = ServicePolicy(
        workers=args.workers or 2,
        heartbeat_timeout=args.heartbeat_timeout,
        cell_timeout=args.cell_timeout,
        retries=args.retries,
        max_pending_cells=args.max_pending_cells,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        snapshot_every=args.snapshot_every,
    )
    service = SweepService(args.root, policy)
    server = ServiceServer(
        service, host=args.host, port=args.port, quiet=not args.verbose
    )
    print(f"sweep service listening on {server.url} (root: {args.root})")
    print("endpoints: POST /sweeps, GET /sweeps/<id>, "
          "GET /sweeps/<id>/result, GET /healthz, GET /stats")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="smoke",
                        choices=["smoke", "default", "large"])
    parser.add_argument("--mixes", default=None,
                        help="comma-separated mix names (default: per-figure)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per cell attempt; hung cells are killed "
        "and retried",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts per failed cell (exponential backoff)",
    )
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="checkpoint completed cells to this journal "
        "(default with --resume: results/<experiment>.journal.jsonl)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip cells already recorded in the journal; failed cells "
        "are re-simulated",
    )
    parser.add_argument(
        "--force-resume", action="store_true",
        help="resume a journal whose configs were edited since it was "
        "written (same names, different contents) instead of refusing",
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=None, metavar="CYCLES",
        help="checkpoint every cell's machine state every CYCLES cycles; "
        "interrupted cells resume from their latest snapshot "
        "(see docs/snapshot.md)",
    )
    parser.add_argument(
        "--snapshot-dir", default=None, metavar="DIR",
        help="directory for per-cell snapshot files (default: next to "
        "the journal, or results/snapshots)",
    )
    _add_check_flag(parser)
    _add_sample_flag(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Loh, '3D-Stacked Memory Architectures "
        "for Multi-Core Processors' (ISCA 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list benchmarks/mixes/configs")
    p_list.add_argument("what", choices=["benchmarks", "mixes", "configs"])
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("--config", default="3d-fast", choices=sorted(CONFIGS))
    p_run.add_argument("--mix", default="H1", choices=list(MIX_ORDER))
    p_run.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark names (overrides --mix; one per core)",
    )
    p_run.add_argument("--scale", default="smoke",
                       choices=["smoke", "default", "large"])
    p_run.add_argument("--seed", type=int, default=42)
    _add_check_flag(p_run)
    _add_sample_flag(p_run)
    p_run.add_argument(
        "--no-fused-mc", action="store_true",
        help="disable the fused memory-controller drain (same as "
        "REPRO_FUSED_MC=0); the scalar pump handles every issue",
    )
    p_run.set_defaults(func=_cmd_run)

    p_prof = sub.add_parser(
        "profile",
        help="run one experiment in-process under cProfile: top hotspots "
        "plus fused/scalar memory-controller window statistics",
    )
    p_prof.add_argument("experiment", choices=["run", "figure4"])
    p_prof.add_argument("--config", default="3d-fast",
                        choices=sorted(CONFIGS))
    p_prof.add_argument("--mix", default="H1", choices=list(MIX_ORDER))
    p_prof.add_argument("--mixes", default=None,
                        help="(figure4) comma-separated mix names")
    p_prof.add_argument("--scale", default="smoke",
                        choices=["smoke", "default", "large"])
    p_prof.add_argument("--seed", type=int, default=42)
    p_prof.add_argument("--top", type=int, default=25,
                        help="functions to print")
    p_prof.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime"])
    p_prof.add_argument(
        "--no-fused-mc", action="store_true",
        help="profile the scalar pump instead (exports REPRO_FUSED_MC=0)",
    )
    p_prof.set_defaults(func=_cmd_profile)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("which", choices=["4", "6a", "6b", "7", "9"])
    p_fig.add_argument("--panel", default="quad-mc",
                       choices=["dual-mc", "quad-mc"])
    _add_common(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_tab = sub.add_parser("table", help="regenerate a paper table")
    p_tab.add_argument("which", choices=["2a", "2b"])
    _add_common(p_tab)
    p_tab.set_defaults(func=_cmd_table)

    p_ana = sub.add_parser(
        "analyze", help="run one workload and print a bottleneck report"
    )
    p_ana.add_argument("--config", default="3d-fast", choices=sorted(CONFIGS))
    p_ana.add_argument("--mix", default="H1", choices=list(MIX_ORDER))
    p_ana.add_argument("--scale", default="smoke",
                       choices=["smoke", "default", "large"])
    p_ana.add_argument("--seed", type=int, default=42)
    _add_check_flag(p_ana)
    p_ana.set_defaults(func=_cmd_analyze)

    p_fair = sub.add_parser(
        "fairness", help="fairness metrics for one mix (solo vs mixed)"
    )
    p_fair.add_argument("--config", default="quad-mc", choices=sorted(CONFIGS))
    p_fair.add_argument("--mix", default="H1", choices=list(MIX_ORDER))
    p_fair.add_argument("--scale", default="smoke",
                        choices=["smoke", "default", "large"])
    p_fair.add_argument("--seed", type=int, default=42)
    p_fair.set_defaults(func=_cmd_fairness)

    p_rep = sub.add_parser(
        "report", help="regenerate every table/figure/ablation"
    )
    _add_common(p_rep)
    p_rep.add_argument("--output", default=None,
                       help="directory to write <name>.txt reports into")
    p_rep.add_argument("--only", default=None,
                       help="comma-separated experiment names")
    p_rep.set_defaults(func=_cmd_report)

    p_ras = sub.add_parser(
        "ras-study",
        help="fault rate x ECC sweep: IPC overhead and error rates",
    )
    p_ras.add_argument(
        "--rates", default=None,
        help="comma-separated per-read fault rates, ascending "
        "(default: 0,1e-4,1e-3)",
    )
    p_ras.add_argument(
        "--ecc", default=None,
        help="comma-separated ECC schemes to sweep (default: none,secded)",
    )
    p_ras.add_argument(
        "--output", default=None, metavar="PATH",
        help="also save the raw result table as JSON",
    )
    _add_common(p_ras)
    p_ras.set_defaults(func=_cmd_ras_study)

    p_modes = sub.add_parser(
        "stack-modes",
        help="stack usage-mode study: flat memory vs L4 cache vs MemCache "
        "across stack capacities",
    )
    p_modes.add_argument(
        "--capacities", default=None,
        help="comma-separated stack capacities in MiB (default: 32,64,128)",
    )
    p_modes.add_argument(
        "--output", default=None, metavar="PATH",
        help="also save the raw result table as JSON",
    )
    _add_common(p_modes)
    p_modes.set_defaults(func=_cmd_stack_modes)

    p_srv = sub.add_parser(
        "serve",
        help="run the resilient sweep service (durable queue + result cache)",
    )
    p_srv.add_argument(
        "--root", default="results/service",
        help="state directory: job-queue journal + result cache",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8642)
    p_srv.add_argument("--workers", type=int, default=None,
                       help="persistent supervised worker processes")
    p_srv.add_argument("--heartbeat-timeout", type=float, default=15.0,
                       help="seconds of worker silence before it is "
                       "declared hung and recycled")
    p_srv.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget per cell attempt")
    p_srv.add_argument("--retries", type=int, default=1,
                       help="extra attempts per failed cell")
    p_srv.add_argument("--max-pending-cells", type=int, default=4096,
                       help="admission bound: submissions past this many "
                       "pending cells get 503")
    p_srv.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive failures that trip a scenario's "
                       "circuit breaker")
    p_srv.add_argument("--breaker-cooldown", type=float, default=30.0,
                       help="seconds an open breaker sheds load")
    p_srv.add_argument("--snapshot-every", type=int, default=None,
                       metavar="CYCLES",
                       help="checkpoint each cell every CYCLES cycles; "
                       "preempted/killed workers are rescheduled from "
                       "their latest snapshot")
    p_srv.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")
    p_srv.set_defaults(func=_cmd_serve)

    p_abl = sub.add_parser("ablation", help="run a design-choice ablation")
    p_abl.add_argument(
        "which",
        choices=["scheduler", "interleave", "prefetch", "replacement", "mshr"],
    )
    _add_common(p_abl)
    p_abl.set_defaults(func=_cmd_ablation)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CheckViolation as exc:
        print(f"CHECK FAILED\n{exc.describe()}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
