"""Property tests for ``dram/timing.py`` driven by ``tests.strategies``.

These pin the algebra the shadow-bank checker relies on: scaling and
shrinking preserve the dataclass invariants, legal generators only
produce legal timings, and every mutation is a strict speedup of
exactly one parameter.
"""

import pytest

from repro.dram.timing import DramTiming, ddr2_commodity, true_3d

from tests.strategies import (
    TIMING_PARAMS,
    random_timing,
    shrink_timing,
    timing_mutations,
)


@pytest.mark.parametrize("seed", range(20))
def test_random_timing_is_always_legal(seed):
    timing = random_timing(seed)
    # Constructing DramTiming already enforces positivity and
    # t_ras >= t_rcd; spot-check the derived quantity too.
    assert timing.t_rc == timing.t_ras + timing.t_rp
    assert all(getattr(timing, param) >= 1 for param in TIMING_PARAMS)


@pytest.mark.parametrize("factor", [1.0, 1.3, 2.0])
def test_uniform_slowdown_is_legal(factor):
    slow = ddr2_commodity().scaled(factor)
    assert isinstance(slow, DramTiming)
    assert slow.t_ras >= slow.t_rcd


@pytest.mark.parametrize("param", TIMING_PARAMS)
def test_shrink_strictly_reduces_one_parameter(param):
    timing = ddr2_commodity()
    mutant = shrink_timing(timing, param)
    assert getattr(mutant, param) < getattr(timing, param)
    for other in TIMING_PARAMS:
        if other != param:
            assert getattr(mutant, other) == getattr(timing, other)


def test_shrink_rejects_unknown_parameter():
    with pytest.raises(ValueError, match="unknown timing parameter"):
        shrink_timing(ddr2_commodity(), "t_bogus")


def test_shrink_preserves_ras_rcd_invariant():
    # t_ras shrinks are clamped so the mutant still constructs.
    timing = ddr2_commodity()
    mutant = shrink_timing(timing, "t_ras", factor=0.01)
    assert mutant.t_ras >= mutant.t_rcd


@pytest.mark.parametrize("preset", [ddr2_commodity, true_3d])
def test_every_preset_parameter_is_mutable(preset):
    timing = preset()
    mutated = dict(timing_mutations(timing))
    # Every array parameter of the paper's presets admits a shrink.
    assert set(mutated) == set(TIMING_PARAMS)
    for param, mutant in mutated.items():
        assert getattr(mutant, param) < getattr(timing, param)
