"""Unit tests for the analytic DRAM bank model."""

from repro.dram.bank import Bank
from repro.dram.refresh import RefreshSchedule
from repro.dram.timing import ddr2_commodity, true_3d


def _bank(row_buffer_entries=1, timing=None, phase=1_000_000):
    # A large refresh phase keeps the first window away from the tests.
    timing = timing or ddr2_commodity()
    return Bank(timing, RefreshSchedule(timing, phase=phase), row_buffer_entries)


def test_first_access_is_a_row_miss_with_rcd_cas_latency():
    bank = _bank()
    t = bank.timing
    data_time, hit = bank.access(0, row=7, is_write=False)
    assert not hit
    assert data_time == t.t_rcd + t.t_cas


def test_row_hit_costs_cas_only():
    bank = _bank()
    t = bank.timing
    first, _ = bank.access(0, row=7, is_write=False)
    start = first + 100
    data_time, hit = bank.access(start, row=7, is_write=False)
    assert hit
    assert data_time == start + t.t_cas


def test_row_conflict_waits_for_row_cycle():
    bank = _bank()
    t = bank.timing
    bank.access(0, row=1, is_write=False)
    # Immediately accessing another row: activate can only start once the
    # previous row cycle (tRC) completes.
    data_time, hit = bank.access(t.t_rcd + t.t_cas, row=2, is_write=False)
    assert not hit
    assert data_time == t.t_rc + t.t_rcd + t.t_cas


def test_multi_entry_buffer_keeps_both_rows_open():
    bank = _bank(row_buffer_entries=2)
    bank.access(0, row=1, is_write=False)
    bank.access(1000, row=2, is_write=False)
    assert bank.is_row_open(1)
    assert bank.is_row_open(2)
    _, hit = bank.access(2000, row=1, is_write=False)
    assert hit


def test_single_entry_buffer_closes_previous_row():
    bank = _bank(row_buffer_entries=1)
    bank.access(0, row=1, is_write=False)
    bank.access(1000, row=2, is_write=False)
    assert not bank.is_row_open(1)


def test_dirty_eviction_adds_write_recovery():
    timing = ddr2_commodity()
    clean = _bank()
    dirty = _bank()
    # Open row 1; in `dirty` write to it so eviction needs restore.
    clean.access(0, row=1, is_write=False)
    dirty.access(0, row=1, is_write=True)
    t_clean, _ = clean.access(10_000, row=2, is_write=False)
    t_dirty, _ = dirty.access(10_000, row=2, is_write=False)
    assert t_dirty == t_clean + timing.t_wr


def test_back_to_back_hits_are_spaced_by_tccd():
    bank = _bank(row_buffer_entries=1)
    t = bank.timing
    bank.access(0, row=1, is_write=False)
    settle = 10_000
    first, _ = bank.access(settle, row=1, is_write=False)
    second, _ = bank.access(settle, row=1, is_write=False)
    assert second - first == t.t_ccd


def test_refresh_blackout_delays_access():
    timing = ddr2_commodity()
    bank = Bank(timing, RefreshSchedule(timing, phase=0), 1)
    data_time, _ = bank.access(0, row=1, is_write=False)
    # The access cannot begin until the first blackout ends.
    assert data_time == timing.t_rfc + timing.t_rcd + timing.t_cas


def test_refresh_epoch_closes_open_rows():
    timing = ddr2_commodity()
    bank = Bank(timing, RefreshSchedule(timing, phase=0), 2)
    bank.access(timing.t_rfc, row=1, is_write=False)
    assert bank.is_row_open(1)
    # Jump past the next refresh window: rows were precharged for it.
    _, hit = bank.access(timing.refresh_interval + timing.t_rfc, row=1, is_write=False)
    assert not hit
    assert bank.stats.get("refresh_row_closures") >= 1


def test_true_3d_is_faster():
    slow = _bank(timing=ddr2_commodity())
    fast = _bank(timing=true_3d())
    t_slow, _ = slow.access(0, row=1, is_write=False)
    t_fast, _ = fast.access(0, row=1, is_write=False)
    assert t_fast < t_slow


def test_stats_count_hits_and_misses():
    bank = _bank()
    bank.access(0, row=1, is_write=False)
    bank.access(10_000, row=1, is_write=False)
    bank.access(20_000, row=2, is_write=False)
    assert bank.stats.get("row_misses") == 2
    assert bank.stats.get("row_hits") == 1


def test_earliest_start_respects_bank_busy():
    bank = _bank()
    data_time, _ = bank.access(0, row=1, is_write=False)
    assert bank.earliest_start(0) >= data_time
