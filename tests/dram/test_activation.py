"""Unit tests for the tRRD/tFAW activation governor."""

import pytest

from repro.dram.activation import ActivationWindow
from repro.dram.bank import Bank
from repro.dram.rank import Rank
from repro.dram.refresh import RefreshSchedule
from repro.dram.timing import ddr2_commodity, true_3d


def test_first_activation_unconstrained():
    window = ActivationWindow(ddr2_commodity())
    assert window.earliest_activate(100) == 100


def test_trrd_spaces_consecutive_activations():
    timing = ddr2_commodity()
    window = ActivationWindow(timing)
    window.record(100)
    assert window.earliest_activate(100) == 100 + timing.t_rrd
    assert window.earliest_activate(100 + timing.t_rrd + 5) == 100 + timing.t_rrd + 5


def test_tfaw_limits_four_activation_bursts():
    timing = ddr2_commodity()
    window = ActivationWindow(timing)
    start = 1000
    for i in range(4):
        t = window.earliest_activate(start)
        window.record(t)
    fifth = window.earliest_activate(start)
    first = window.recent_activations[0]
    assert fifth >= first + timing.t_faw


def test_record_rejects_time_travel():
    window = ActivationWindow(ddr2_commodity())
    window.record(500)
    with pytest.raises(ValueError):
        window.record(400)


def test_window_validation():
    with pytest.raises(ValueError):
        ActivationWindow(ddr2_commodity(), window=0)


def test_true_3d_constraints_scaled():
    assert true_3d().t_rrd < ddr2_commodity().t_rrd
    assert true_3d().t_faw < ddr2_commodity().t_faw


def test_banks_in_a_rank_share_the_governor():
    rank = Rank(0, ddr2_commodity(), num_banks=4, refresh_phase=10**9)
    assert all(b.activations is rank.activations for b in rank.banks)
    timing = rank.timing
    # Miss in bank 0 then immediately in bank 1: the second ACT is
    # delayed by tRRD relative to the first.
    t0, _ = rank.bank(0).access(0, row=1, is_write=False)
    t1, _ = rank.bank(1).access(0, row=1, is_write=False)
    assert t1 - t0 >= timing.t_rrd


def test_private_governor_when_unshared():
    timing = ddr2_commodity()
    a = Bank(timing, RefreshSchedule(timing, phase=10**9))
    b = Bank(timing, RefreshSchedule(timing, phase=10**9))
    ta, _ = a.access(0, row=1, is_write=False)
    tb, _ = b.access(0, row=1, is_write=False)
    assert ta == tb  # different ranks: no coupling
