"""Unit tests for open- vs closed-page DRAM policies."""

import pytest

from repro.dram.bank import Bank
from repro.dram.refresh import RefreshSchedule
from repro.dram.timing import ddr2_commodity


def _bank(policy):
    timing = ddr2_commodity()
    return Bank(
        timing, RefreshSchedule(timing, phase=10**9), 1, page_policy=policy
    )


def test_closed_page_never_reports_hits():
    bank = _bank("closed")
    bank.access(0, row=5, is_write=False)
    _, hit = bank.access(10_000, row=5, is_write=False)
    assert not hit
    assert not bank.is_row_open(5)
    assert bank.stats.get("row_hits") == 0


def test_closed_page_same_row_costs_full_activate():
    timing = ddr2_commodity()
    opened, closed = _bank("open"), _bank("closed")
    for bank in (opened, closed):
        bank.access(0, row=5, is_write=False)
    settle = 10_000
    t_open, _ = opened.access(settle, row=5, is_write=False)
    t_closed, _ = closed.access(settle, row=5, is_write=False)
    assert t_open == settle + timing.t_cas  # row-buffer hit
    assert t_closed == settle + timing.t_rcd + timing.t_cas


def test_closed_page_avoids_conflict_wait():
    """Row conflicts are cheaper under closed-page (no open-row stall
    beyond the array's own row cycle — identical here, but the closed
    bank never pays the dirty-eviction restore)."""
    timing = ddr2_commodity()
    opened, closed = _bank("open"), _bank("closed")
    opened.access(0, row=1, is_write=True)  # dirty open row
    closed.access(0, row=1, is_write=True)
    t_open, _ = opened.access(100, row=2, is_write=False)
    t_closed, _ = closed.access(100, row=2, is_write=False)
    assert t_closed <= t_open  # no tWR restore penalty for closed page


def test_invalid_policy_rejected():
    with pytest.raises(ValueError):
        _bank("ajar")


def test_machine_accepts_closed_page_and_fcfs():
    from repro.common.units import MIB
    from repro.system.config import config_3d_fast
    from repro.system.machine import run_workload

    config = config_3d_fast().derive(
        dram_page_policy="closed",
        l2_size=1 * MIB, l2_assoc=16, dram_capacity=64 * MIB,
    )
    result = run_workload(
        config, ["gzip", "namd", "mesa", "astar"],
        warmup_instructions=500, measure_instructions=1500,
    )
    assert result.hmipc > 0
    assert result.dram_row_hit_rate == 0.0  # closed page: never a hit
