"""Unit tests for the DRAM energy model."""

import pytest

from repro.common.stats import StatRegistry
from repro.dram.power import (
    DramEnergyParams,
    DramPowerModel,
    EnergyReport,
    compare_energy,
)


def _report(model=None, hits=100, misses=50, dirty=10, cycles=1_000_000):
    model = model or DramPowerModel()
    return model.report_for_bank(
        row_hits=hits,
        row_misses=misses,
        dirty_evictions=dirty,
        elapsed_cycles=cycles,
        refresh_interval=26_041,
    )


def test_every_component_accounted():
    report = _report()
    assert report.activate_nj > 0
    assert report.burst_nj > 0
    assert report.restore_nj > 0
    assert report.refresh_nj > 0
    assert report.background_nj > 0
    assert report.total_nj == pytest.approx(
        report.dynamic_nj + report.refresh_nj + report.background_nj
    )


def test_row_hits_cost_less_than_misses():
    """The paper's argument for row-buffer caches: hits skip the array."""
    all_hits = _report(hits=150, misses=0, dirty=0)
    all_misses = _report(hits=0, misses=150, dirty=0)
    assert all_hits.dynamic_nj < all_misses.dynamic_nj
    assert all_hits.nj_per_access < all_misses.nj_per_access


def test_true_3d_scaling_reduces_array_energy():
    base = DramPowerModel(DramEnergyParams())
    scaled = DramPowerModel(DramEnergyParams().scaled_for_true_3d(0.6))
    assert _report(scaled).activate_nj == pytest.approx(
        _report(base).activate_nj * 0.6
    )
    # Burst (I/O) energy is unscaled.
    assert _report(scaled).burst_nj == _report(base).burst_nj


def test_scale_factor_validation():
    with pytest.raises(ValueError):
        DramEnergyParams().scaled_for_true_3d(0.0)
    with pytest.raises(ValueError):
        DramEnergyParams().scaled_for_true_3d(1.5)


def test_average_power_math():
    report = EnergyReport(
        activate_nj=0.0, burst_nj=0.0, restore_nj=0.0,
        refresh_nj=0.0, background_nj=1e6,  # 1 mJ
        elapsed_cycles=3_333_333_333,  # ~1 second at 3.333 GHz
    )
    assert report.avg_power_mw == pytest.approx(1.0, rel=0.01)


def test_reports_add():
    a = _report(hits=10, misses=5)
    b = _report(hits=20, misses=10)
    combined = a + b
    assert combined.row_hits == 30
    assert combined.dynamic_nj == pytest.approx(a.dynamic_nj + b.dynamic_nj)


def test_registry_aggregation_filters_bank_groups():
    registry = StatRegistry()
    bank = registry.group("dram.rank0.bank0")
    bank.add("row_hits", 10)
    bank.add("row_misses", 5)
    registry.group("l2").add("row_hits", 999)  # must be ignored
    model = DramPowerModel()
    report = model.report_from_registry(
        registry, elapsed_cycles=10_000, refresh_interval=26_041
    )
    assert report.row_hits == 10
    assert report.row_misses == 5


def test_negative_cycles_rejected():
    with pytest.raises(ValueError):
        _report(cycles=-1)


def test_compare_energy_formatting():
    text = compare_energy([("2D", _report()), ("3D-fast", _report())])
    assert "2D" in text and "3D-fast" in text and "dyn nJ/acc" in text


def test_machine_result_carries_energy_extras():
    from repro.common.units import MIB
    from repro.system.config import config_3d_fast
    from repro.system.machine import run_workload

    result = run_workload(
        config_3d_fast().derive(l2_size=1 * MIB, l2_assoc=16),
        ["gzip", "namd", "mesa", "astar"],
        warmup_instructions=500,
        measure_instructions=1500,
    )
    assert result.extra["dram_dynamic_nj_per_access"] > 0
    assert result.extra["dram_avg_power_mw"] > 0
