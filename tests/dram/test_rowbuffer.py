"""Unit and property tests for the row-buffer cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.rowbuffer import RowBufferCache


def test_single_entry_replacement():
    rb = RowBufferCache(1)
    assert rb.insert(5) is None
    assert rb.lookup(5)
    evicted = rb.insert(9)
    assert evicted == (5, False)
    assert not rb.lookup(5)
    assert rb.lookup(9)


def test_lru_eviction_order():
    rb = RowBufferCache(2)
    rb.insert(1)
    rb.insert(2)
    rb.lookup(1)  # promote 1 to MRU
    evicted = rb.insert(3)
    assert evicted == (2, False)
    assert rb.open_rows == (1, 3)


def test_dirty_tracking():
    rb = RowBufferCache(2)
    rb.insert(1)
    rb.touch_dirty(1)
    rb.insert(2)
    evicted = rb.insert(3)
    assert evicted == (1, True)


def test_insert_dirty_directly():
    rb = RowBufferCache(1)
    rb.insert(7, dirty=True)
    assert rb.insert(8) == (7, True)


def test_touch_dirty_missing_row_raises():
    rb = RowBufferCache(1)
    with pytest.raises(KeyError):
        rb.touch_dirty(42)


def test_duplicate_insert_raises():
    rb = RowBufferCache(2)
    rb.insert(1)
    with pytest.raises(ValueError):
        rb.insert(1)


def test_evict_all_returns_contents():
    rb = RowBufferCache(4)
    rb.insert(1)
    rb.insert(2, dirty=True)
    held = rb.evict_all()
    assert held == ((1, False), (2, True))
    assert len(rb) == 0


def test_zero_entries_rejected():
    with pytest.raises(ValueError):
        RowBufferCache(0)


@settings(max_examples=60)
@given(
    entries=st.integers(min_value=1, max_value=4),
    rows=st.lists(st.integers(min_value=0, max_value=12), max_size=100),
)
def test_property_matches_lru_reference_model(entries, rows):
    """The cache behaves exactly like an ordered-dict LRU reference."""
    rb = RowBufferCache(entries)
    reference = []  # LRU -> MRU list of rows
    for row in rows:
        if row in reference:
            assert rb.lookup(row)
            reference.remove(row)
            reference.append(row)
        else:
            assert not rb.lookup(row)
            evicted = rb.insert(row)
            if len(reference) >= entries:
                expected_victim = reference.pop(0)
                assert evicted is not None and evicted[0] == expected_victim
            else:
                assert evicted is None
            reference.append(row)
        assert len(rb) == len(reference) <= entries
        assert rb.open_rows == tuple(reference)
