"""Property tests for DRAM bank timing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.bank import Bank
from repro.dram.refresh import RefreshSchedule
from repro.dram.timing import ddr2_commodity, true_3d

accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),  # inter-arrival gap
        st.integers(min_value=0, max_value=6),  # row
        st.booleans(),  # is_write
    ),
    max_size=60,
)


def _bank(entries, timing):
    return Bank(timing, RefreshSchedule(timing, phase=10**9), entries)


@settings(max_examples=60)
@given(seq=accesses, entries=st.sampled_from([1, 2, 4]))
def test_bank_timing_invariants(seq, entries):
    timing = ddr2_commodity()
    bank = _bank(entries, timing)
    time = 0
    previous_data = 0
    for gap, row, is_write in seq:
        time += gap
        open_before = row in bank.row_buffers
        data_time, hit = bank.access(time, row, is_write)
        # 1. Hit status reflects the row-buffer state at access time.
        assert hit == open_before
        # 2. Causality: data can never appear before the request plus CAS.
        assert data_time >= time + timing.t_cas
        # 3. Hits cost no more than a fresh activate would.
        if hit:
            assert data_time <= max(time, previous_data) + timing.t_rc + timing.t_cas
        # 4. The accessed row is buffered afterwards.
        assert row in bank.row_buffers
        # 5. The buffer never exceeds its capacity.
        assert len(bank.row_buffers) <= entries
        # 6. Data times are strictly increasing per bank (serialization).
        assert data_time > previous_data or previous_data == 0
        previous_data = data_time


@settings(max_examples=40)
@given(seq=accesses)
def test_true_3d_never_slower_than_commodity(seq):
    """Same access sequence: the true-3D arrays finish no later."""
    slow = _bank(1, ddr2_commodity())
    fast = _bank(1, true_3d())
    time = 0
    for gap, row, is_write in seq:
        time += gap
        t_slow, _ = slow.access(time, row, is_write)
        t_fast, _ = fast.access(time, row, is_write)
        assert t_fast <= t_slow


@settings(max_examples=40)
@given(seq=accesses)
def test_more_row_buffers_never_reduce_hits(seq):
    """Hit count is monotone in row-buffer entries (LRU inclusion)."""
    timing = ddr2_commodity()
    hits = []
    for entries in (1, 2, 4):
        bank = _bank(entries, timing)
        count = 0
        time = 0
        for gap, row, is_write in seq:
            time += gap
            _, hit = bank.access(time, row, is_write)
            count += hit
        hits.append(count)
    assert hits[0] <= hits[1] <= hits[2]
