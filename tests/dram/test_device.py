"""Unit tests for ranks and the DRAM device facade."""

import pytest

from repro.dram.device import DramDevice
from repro.dram.rank import Rank
from repro.dram.timing import ddr2_commodity


def test_rank_builds_banks():
    rank = Rank(0, ddr2_commodity(), num_banks=8)
    assert rank.num_banks == 8
    assert rank.bank(3) is rank.banks[3]


def test_rank_refresh_phases_are_staggered():
    timing = ddr2_commodity()
    phases = {Rank(i, timing).refresh.phase for i in range(4)}
    assert len(phases) == 4


def test_rank_rejects_zero_banks():
    with pytest.raises(ValueError):
        Rank(0, ddr2_commodity(), num_banks=0)


def test_device_shape():
    device = DramDevice(ddr2_commodity(), num_ranks=4, banks_per_rank=8)
    assert device.num_ranks == 4
    assert device.banks_per_rank == 8
    assert device.total_banks == 32


def test_device_bank_addressing_is_stable():
    device = DramDevice(ddr2_commodity(), num_ranks=2, banks_per_rank=2)
    assert device.bank(1, 1) is device.ranks[1].banks[1]


def test_device_access_and_open_row_query():
    device = DramDevice(ddr2_commodity(), num_ranks=2, banks_per_rank=2)
    assert not device.is_row_open(0, 0, 5)
    data_time, hit = device.access(0, 0, 5, start=10_000_000, is_write=False)
    assert not hit
    assert device.is_row_open(0, 0, 5)
    # Other banks unaffected.
    assert not device.is_row_open(1, 0, 5)


def test_first_rank_id_offsets_rank_numbering():
    device = DramDevice(ddr2_commodity(), num_ranks=2, first_rank_id=4)
    assert [r.rank_id for r in device.ranks] == [4, 5]


def test_open_row_summary():
    device = DramDevice(ddr2_commodity(), num_ranks=1, banks_per_rank=2)
    device.access(0, 1, 9, start=10_000_000, is_write=False)
    summary = dict(
        ((rank, bank), rows) for rank, bank, rows in device.open_row_summary()
    )
    assert summary[(0, 1)] == (9,)
    assert summary[(0, 0)] == ()
