"""Unit tests for DRAM timing presets (Table 1)."""

import pytest

from repro.dram.timing import DramTiming, ddr2_commodity, stacked_commodity, true_3d


def test_commodity_matches_table1():
    t = ddr2_commodity()
    assert t.t_ras == 120
    assert t.t_rcd == t.t_cas == t.t_wr == t.t_rp == 40


def test_true_3d_matches_table1():
    t = true_3d()
    assert t.t_ras == 81
    assert t.t_rcd == t.t_cas == t.t_wr == t.t_rp == 27


def test_true_3d_is_32_percent_faster():
    # The paper quotes a 32.5% tRAS improvement for the 5-layer part.
    improvement = 1 - true_3d().t_ras / ddr2_commodity().t_ras
    assert improvement == pytest.approx(0.325, abs=0.01)


def test_refresh_periods_differ_on_stack():
    off_chip = ddr2_commodity()
    on_stack = stacked_commodity()
    assert on_stack.refresh_period * 2 == off_chip.refresh_period
    # Same array timings for the simple 3D organizations.
    assert on_stack.t_ras == off_chip.t_ras
    assert on_stack.t_cas == off_chip.t_cas


def test_trc_is_ras_plus_rp():
    t = ddr2_commodity()
    assert t.t_rc == t.t_ras + t.t_rp


def test_refresh_interval():
    t = ddr2_commodity()
    assert t.refresh_interval == t.refresh_period // 8192
    assert t.refresh_interval > t.t_rfc


def test_scaled_copy():
    t = ddr2_commodity()
    half = t.scaled(0.5)
    assert half.t_cas == 20
    assert half.t_ras == 60
    assert half.refresh_period == t.refresh_period  # untouched


def test_scaled_floors_at_one_cycle():
    t = ddr2_commodity().scaled(0.0001)
    assert t.t_cas == 1


def test_validation_rejects_nonpositive():
    with pytest.raises(ValueError):
        DramTiming(t_rcd=0, t_cas=1, t_rp=1, t_ras=1, t_wr=1, refresh_period=1000)


def test_validation_rejects_ras_below_rcd():
    with pytest.raises(ValueError):
        DramTiming(t_rcd=10, t_cas=1, t_rp=1, t_ras=5, t_wr=1, refresh_period=1000)
