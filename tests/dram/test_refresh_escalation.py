"""Refresh-rate escalation: regime changes, history, shadow replay."""

import pytest

from repro.dram.bank import Bank
from repro.dram.refresh import RefreshSchedule
from repro.dram.timing import ddr2_commodity
from repro.validate.dram_timing import ShadowBank


def _schedule(phase=0):
    return RefreshSchedule(ddr2_commodity(), phase=phase)


def test_escalation_takes_effect_at_next_window_boundary():
    s = _schedule()
    base = s.t_refi
    s.set_multiplier(2, now=5)
    assert s.multiplier == 2
    assert s.t_refi == base // 2
    # Until the boundary the old cadence is in force: no extra window
    # opens mid-regime at base // 2.
    assert s.earliest_available(base // 2) == base // 2
    # After the boundary the 2x cadence runs: windows at base and
    # base + base // 2.
    assert s.earliest_available(base + 1) == base + s.t_rfc
    second = base + base // 2
    assert s.earliest_available(second + 1) == second + s.t_rfc
    assert s.epoch(base) == 1
    assert s.epoch(second) == 2


def test_deescalation_is_allowed():
    s = _schedule()
    base = s.t_refi
    s.set_multiplier(4, now=0)
    s.set_multiplier(1, now=5 * base)
    assert s.multiplier == 1
    assert s.t_refi == base


def test_same_multiplier_is_idempotent():
    s = _schedule()
    s.set_multiplier(2, now=100)
    history_len = len(s._history)
    s.set_multiplier(2, now=50_000_000)
    assert len(s._history) == history_len
    assert s.multiplier == 2


def test_invalid_multipliers_rejected():
    s = _schedule()
    with pytest.raises(ValueError, match="must be >= 1"):
        s.set_multiplier(0, now=0)
    # A multiplier so large the interval would sink below the blackout.
    too_fast = s._base_refi // s.t_rfc + 1
    with pytest.raises(ValueError, match="must exceed"):
        s.set_multiplier(too_fast, now=0)


def test_double_escalation_before_boundary_retargets_in_place():
    # Regression: a second retention burst can escalate 2x -> 4x before
    # the 2x regime's anchor boundary has even been reached.  The
    # pending regime has zero elapsed windows, so it is retargeted in
    # place instead of raising.
    s = _schedule()
    base = s.t_refi
    s.set_multiplier(2, now=5)
    history_len = len(s._history)
    s.set_multiplier(4, now=10)  # 10 < anchor (= base): still pending
    assert s.multiplier == 4
    assert s.t_refi == base // 4
    assert len(s._history) == history_len  # no extra regime recorded
    # Old cadence until the recorded boundary, 4x after it.
    assert s.earliest_available(base // 2) == base // 2
    quarter = base + base // 4
    assert s.earliest_available(quarter + 1) == quarter + s.t_rfc


def test_phase_reanchor_rejected_after_rate_change():
    s = _schedule()
    s.set_multiplier(2, now=0)
    with pytest.raises(ValueError, match="re-phase"):
        s.phase = 123


def test_historical_queries_survive_escalation():
    s = _schedule()
    base = s.t_refi
    probes = [0, s.t_rfc - 1, s.t_rfc, base // 2, base - 1]
    before = [
        (s.earliest_available(t), s.epoch(t), s.blackout_cycles_until(t))
        for t in probes
    ]
    s.set_multiplier(4, now=base // 2)
    after = [
        (s.earliest_available(t), s.epoch(t), s.blackout_cycles_until(t))
        for t in probes
    ]
    # Questions about the past answer with the cadence in force then.
    assert after == before


@pytest.mark.parametrize("multiplier", [2, 4])
def test_no_starvation_under_escalated_refresh(multiplier):
    s = _schedule()
    base = s.t_refi
    s.set_multiplier(multiplier, now=base // 3)
    step = max(1, s.t_refi // 7)
    for t in range(0, 20 * base, step):
        available = s.earliest_available(t)
        assert t <= available <= t + 2 * s.t_rfc
        # The answer is itself available (no livelock chasing windows).
        assert s.earliest_available(available) == available


def test_shadow_bank_tracks_midrun_escalation():
    """A Bank and its shadow replica stay cycle-identical through a
    mid-run refresh-rate change broadcast via observe_refresh_escalation
    (the same seam RasController uses for the dram-timing checker)."""
    timing = ddr2_commodity()
    schedule = RefreshSchedule(timing, phase=0)
    bank = Bank(timing, schedule)
    shadow = ShadowBank(timing, refresh_phase=0)
    step = timing.refresh_interval // 5
    escalate_at = 8
    now = 0
    for i in range(40):
        if i == escalate_at:
            schedule.set_multiplier(2, now)
            shadow.observe_refresh_escalation(2, now)
        data_time, hit = bank.access(now, row=i % 3, is_write=bool(i % 4 == 0))
        # observe() raises TimingViolation on any divergence.
        shadow.observe(now, i % 3, bool(i % 4 == 0), data_time, hit)
        now = max(data_time, now + step)


def test_shadow_bank_diverges_without_the_broadcast():
    timing = ddr2_commodity()
    schedule = RefreshSchedule(timing, phase=0)
    bank = Bank(timing, schedule)
    shadow = ShadowBank(timing, refresh_phase=0)
    schedule.set_multiplier(4, 0)  # real bank escalates; shadow not told
    step = timing.refresh_interval // 3
    now = 0
    with pytest.raises(Exception):
        for i in range(60):
            data_time, hit = bank.access(now, row=0, is_write=False)
            shadow.observe(now, 0, False, data_time, hit)
            now = max(data_time, now + step)
