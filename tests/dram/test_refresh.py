"""Unit and property tests for the refresh blackout schedule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.refresh import RefreshSchedule
from repro.dram.timing import ddr2_commodity


def _schedule(phase=0):
    return RefreshSchedule(ddr2_commodity(), phase=phase)


def test_time_inside_blackout_is_pushed_out():
    s = _schedule()
    assert s.earliest_available(0) == s.t_rfc
    assert s.earliest_available(s.t_rfc - 1) == s.t_rfc


def test_time_outside_blackout_unchanged():
    s = _schedule()
    assert s.earliest_available(s.t_rfc) == s.t_rfc
    assert s.earliest_available(s.t_refi - 1) == s.t_refi - 1


def test_second_window():
    s = _schedule()
    inside_second = s.t_refi + 5
    assert s.earliest_available(inside_second) == s.t_refi + s.t_rfc


def test_phase_shifts_windows():
    s = _schedule(phase=1000)
    assert s.earliest_available(0) == 0  # before the first window
    assert s.earliest_available(1000) == 1000 + s.t_rfc


def test_epoch_increments_each_interval():
    s = _schedule()
    assert s.epoch(0) == 0
    assert s.epoch(s.t_refi - 1) == 0
    assert s.epoch(s.t_refi) == 1
    assert s.epoch(5 * s.t_refi + 3) == 5


def test_blackout_accounting():
    s = _schedule()
    assert s.blackout_cycles_until(s.t_rfc) == s.t_rfc
    assert s.blackout_cycles_until(s.t_refi) == s.t_rfc
    assert s.blackout_cycles_until(2 * s.t_refi) == 2 * s.t_rfc


def test_interval_must_exceed_blackout():
    timing = ddr2_commodity()
    import dataclasses

    broken = dataclasses.replace(timing, t_rfc=timing.refresh_interval + 1)
    with pytest.raises(ValueError):
        RefreshSchedule(broken)


@settings(max_examples=100)
@given(
    time=st.integers(min_value=0, max_value=10**9),
    phase=st.integers(min_value=0, max_value=10**6),
)
def test_property_result_is_outside_blackout_and_not_early(time, phase):
    s = _schedule(phase=phase)
    available = s.earliest_available(time)
    assert available >= time
    # The returned time is genuinely outside any blackout window.
    if available >= s.phase:
        offset = (available - s.phase) % s.t_refi
        assert offset >= s.t_rfc or offset == 0 and available == s.phase + 0
        # (offset == 0 can only occur at window starts, which are inside
        # the blackout, so it must have been pushed to >= t_rfc)
        assert offset >= s.t_rfc
