"""Unit tests for the memory request queue."""

import pytest

from repro.common.request import AccessType, MemoryRequest
from repro.memctrl.mapping import AddressMapping
from repro.memctrl.queue import MemoryRequestQueue


def _entry_args(addr=0x1000):
    request = MemoryRequest(addr, AccessType.READ)
    coords = AddressMapping().decompose(addr)
    return request, coords


def test_push_until_full():
    queue = MemoryRequestQueue(capacity=2)
    assert queue.push(*_entry_args(), now=0) is not None
    assert queue.push(*_entry_args(), now=1) is not None
    assert queue.is_full
    assert queue.push(*_entry_args(), now=2) is None
    assert len(queue) == 2


def test_entries_keep_arrival_order():
    queue = MemoryRequestQueue(capacity=4)
    for t in range(3):
        queue.push(*_entry_args(addr=t * 4096), now=t * 10)
    arrivals = [e.arrival for e in queue.entries]
    assert arrivals == [0, 10, 20]


def test_remove_frees_capacity():
    queue = MemoryRequestQueue(capacity=1)
    entry = queue.push(*_entry_args(), now=0)
    assert queue.is_full
    queue.remove(entry)
    assert queue.is_empty
    assert queue.push(*_entry_args(), now=1) is not None


def test_occupancy():
    queue = MemoryRequestQueue(capacity=4)
    queue.push(*_entry_args(), now=0)
    assert queue.occupancy() == 0.25


def test_capacity_validation():
    with pytest.raises(ValueError):
        MemoryRequestQueue(capacity=0)
