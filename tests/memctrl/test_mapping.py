"""Unit and property tests for page-interleaved address mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memctrl.mapping import AddressMapping


def test_consecutive_pages_spread_across_mcs_first():
    mapping = AddressMapping(num_mcs=4, ranks_per_mc=4, banks_per_rank=8)
    mcs = [mapping.mc_index(page * 4096) for page in range(8)]
    assert mcs == [0, 1, 2, 3, 0, 1, 2, 3]


def test_then_across_banks():
    mapping = AddressMapping(num_mcs=2, ranks_per_mc=4, banks_per_rank=4)
    banks = [mapping.decompose(page * 4096).bank for page in range(0, 16, 2)]
    assert banks == [0, 1, 2, 3, 0, 1, 2, 3]


def test_column_from_page_offset():
    mapping = AddressMapping()
    coords = mapping.decompose(4096 + 5 * 64 + 3)
    assert coords.column == 5


def test_same_page_same_bank_row():
    mapping = AddressMapping(num_mcs=2)
    a = mapping.decompose(0x1000)
    b = mapping.decompose(0x1FC0)
    assert (a.mc, a.rank, a.bank, a.row) == (b.mc, b.rank, b.bank, b.row)


def test_totals():
    mapping = AddressMapping(num_mcs=4, ranks_per_mc=4, banks_per_rank=8)
    assert mapping.total_ranks == 16
    assert mapping.total_banks == 128


def test_single_mc_owns_everything():
    mapping = AddressMapping(num_mcs=1)
    assert all(mapping.mc_index(page * 4096) == 0 for page in range(32))


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(num_mcs=0),
        dict(page_size=3000),
        dict(line_size=8192),  # line bigger than page
        dict(line_size=100),
    ],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        AddressMapping(**kwargs)


@settings(max_examples=100)
@given(
    addr=st.integers(min_value=0, max_value=2**38 - 1),
    num_mcs=st.sampled_from([1, 2, 4]),
    ranks=st.sampled_from([2, 4, 8]),
    banks=st.sampled_from([4, 8]),
)
def test_property_decompose_compose_roundtrip(addr, num_mcs, ranks, banks):
    mapping = AddressMapping(
        num_mcs=num_mcs, ranks_per_mc=ranks, banks_per_rank=banks
    )
    coords = mapping.decompose(addr)
    assert 0 <= coords.mc < num_mcs
    assert 0 <= coords.rank < ranks
    assert 0 <= coords.bank < banks
    rebuilt = mapping.compose(coords, column_offset=addr & 63)
    assert rebuilt == addr


def test_xor_scheme_is_bijective():
    mapping = AddressMapping(num_mcs=2, ranks_per_mc=4, banks_per_rank=8,
                             scheme="xor")
    for addr in range(0, 1 << 22, 4096):
        coords = mapping.decompose(addr)
        assert mapping.compose(coords) == addr


def test_xor_scheme_breaks_bank_aliasing():
    """A stride that always lands in bank 0 under modulo interleaving
    spreads across banks under XOR permutation."""
    plain = AddressMapping(banks_per_rank=8)
    xor = AddressMapping(banks_per_rank=8, scheme="xor")
    stride = 8 * 4096  # one page per bank period -> constant bank
    addrs = [i * stride for i in range(64)]
    plain_banks = {plain.decompose(a).bank for a in addrs}
    xor_banks = {xor.decompose(a).bank for a in addrs}
    assert len(plain_banks) == 1
    assert len(xor_banks) > 4


def test_xor_requires_power_of_two_banks():
    with pytest.raises(ValueError):
        AddressMapping(banks_per_rank=6, scheme="xor")


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        AddressMapping(scheme="hilbert")
