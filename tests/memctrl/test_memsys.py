"""Unit tests for the multi-controller memory system facade."""

import pytest

from repro.common.request import AccessType, MemoryRequest
from repro.dram.timing import ddr2_commodity
from repro.engine import Engine
from repro.interconnect.links import tsv_bus
from repro.memctrl.memsys import MainMemory


def _memory(num_mcs=2, total_ranks=8, capacity=32):
    engine = Engine()
    memory = MainMemory(
        engine,
        ddr2_commodity(),
        bus_factory=lambda name: tsv_bus(width_bytes=64, name=name),
        num_mcs=num_mcs,
        total_ranks=total_ranks,
        aggregate_queue_capacity=capacity,
    )
    return engine, memory


def test_queue_capacity_is_divided_evenly():
    _, memory = _memory(num_mcs=4, total_ranks=8, capacity=32)
    assert all(mc.mrq.capacity == 8 for mc in memory.controllers)


def test_requests_route_by_page():
    _, memory = _memory(num_mcs=2)
    assert memory.controller_for(0x0000) is memory.controllers[0]
    assert memory.controller_for(0x1000) is memory.controllers[1]
    assert memory.controller_for(0x2000) is memory.controllers[0]


def test_ranks_are_partitioned_with_global_ids():
    _, memory = _memory(num_mcs=2, total_ranks=8)
    ids_mc0 = [r.rank_id for r in memory.controllers[0].device.ranks]
    ids_mc1 = [r.rank_id for r in memory.controllers[1].device.ranks]
    assert ids_mc0 == [0, 1, 2, 3]
    assert ids_mc1 == [4, 5, 6, 7]


def test_end_to_end_completion():
    engine, memory = _memory()
    done = []
    for page in range(4):
        request = MemoryRequest(
            page * 4096, AccessType.READ, callback=done.append
        )
        assert memory.enqueue(request)
    engine.run()
    assert len(done) == 4
    assert all(r.completed_at is not None for r in done)


def test_row_hit_rate_aggregates_over_mcs():
    engine, memory = _memory()
    for page in range(2):
        memory.enqueue(MemoryRequest(page * 4096, AccessType.READ))
    engine.run()
    for page in range(2):
        memory.enqueue(MemoryRequest(page * 4096 + 64, AccessType.READ))
    engine.run()
    assert memory.row_hit_rate() == pytest.approx(0.5)


def test_validation():
    with pytest.raises(ValueError):
        _memory(num_mcs=3, total_ranks=8)  # uneven rank split
    with pytest.raises(ValueError):
        _memory(num_mcs=3, capacity=32)  # uneven queue split


def test_wait_for_space_routes_to_owning_mc():
    engine, memory = _memory(num_mcs=2, capacity=2)  # 1 entry per MC
    assert memory.enqueue(MemoryRequest(0x0000, AccessType.READ))
    assert not memory.enqueue(MemoryRequest(0x2000, AccessType.READ))
    woken = []
    memory.wait_for_space(0x2000, lambda: woken.append(True))
    engine.run()
    assert woken == [True]
