"""Integration-style unit tests for one memory controller."""

import pytest

from repro.common.request import AccessType, MemoryRequest
from repro.dram.device import DramDevice
from repro.dram.timing import ddr2_commodity
from repro.engine import Engine
from repro.interconnect.bus import Bus
from repro.memctrl.controller import MemoryController
from repro.memctrl.mapping import AddressMapping
from repro.memctrl.schedulers import FrFcfsScheduler


def _mc(engine, queue_capacity=32, quantum=1, wire=0, width=64):
    mapping = AddressMapping(num_mcs=1, ranks_per_mc=2, banks_per_rank=2)
    device = DramDevice(ddr2_commodity(), num_ranks=2, banks_per_rank=2)
    # Stagger all refresh far away so latency math below is exact.
    for rank in device.ranks:
        rank.refresh.phase = 10**9
    bus = Bus(width_bytes=width, cycles_per_beat=1, wire_latency=wire)
    return MemoryController(
        0, engine, device, bus, FrFcfsScheduler(), mapping,
        queue_capacity=queue_capacity, quantum=quantum,
    )


def _read(addr, cb=None):
    return MemoryRequest(addr, AccessType.READ, callback=cb)


def test_read_miss_latency_components():
    engine = Engine()
    mc = _mc(engine)
    done = []
    assert mc.enqueue(_read(0x0, done.append))
    engine.run()
    t = ddr2_commodity()
    # CWF on a 1-beat-wide bus: tRCD + tCAS + 1 beat.
    assert done[0].completed_at == t.t_rcd + t.t_cas + 1
    assert done[0].row_buffer_hit is False


def test_second_access_same_row_hits():
    engine = Engine()
    mc = _mc(engine)
    done = []
    mc.enqueue(_read(0x0, done.append))
    engine.run()
    first_done = engine.now
    mc.enqueue(_read(0x40, done.append))
    engine.run()
    t = ddr2_commodity()
    assert done[1].row_buffer_hit is True
    assert done[1].completed_at - first_done == t.t_cas + 1


def test_wire_latency_charged_both_ways():
    engine = Engine()
    mc = _mc(engine, wire=10)
    done = []
    mc.enqueue(_read(0x0, done.append))
    engine.run()
    t = ddr2_commodity()
    assert done[0].completed_at == 10 + t.t_rcd + t.t_cas + 1 + 10


def test_write_completes_after_bank_accepts_data():
    engine = Engine()
    mc = _mc(engine)
    done = []
    request = MemoryRequest(0x0, AccessType.WRITEBACK, callback=done.append)
    assert mc.enqueue(request)
    engine.run()
    t = ddr2_commodity()
    # Bus transfer (1 beat) then row activation + write.
    assert done[0].completed_at == 1 + t.t_rcd + t.t_cas


def test_mrq_backpressure_and_waiters():
    engine = Engine()
    mc = _mc(engine, queue_capacity=1, quantum=4)
    accepted = [mc.enqueue(_read(0x0)), mc.enqueue(_read(0x1000))]
    assert accepted == [True, False]
    retried = []
    mc.wait_for_space(lambda: retried.append(engine.now))
    engine.run()
    assert retried, "waiter was never released"


def test_quantum_paces_command_issue():
    engine = Engine()
    quantum = 8
    mc = _mc(engine, quantum=quantum)
    # Two requests to different banks: no bank conflict, so issue times
    # are paced purely by the MC quantum.
    mc.enqueue(_read(0x0000))
    mc.enqueue(_read(0x1000))
    engine.run()
    issues = sorted(
        r.issued_to_dram_at for r in []
    )  # requests are internal; use stats instead
    assert mc.stats.get("issued") == 2


def test_issue_times_respect_quantum():
    engine = Engine()
    quantum = 8
    mc = _mc(engine, quantum=quantum)
    reqs = [_read(0x0000), _read(0x1000)]
    for r in reqs:
        mc.enqueue(r)
    engine.run()
    assert reqs[1].issued_to_dram_at - reqs[0].issued_to_dram_at >= quantum


def test_bank_conflict_keeps_request_queued():
    engine = Engine()
    mc = _mc(engine)
    # Same bank, different rows: the second must wait for the bank.
    a, b = _read(0x0000), _read(0x4000 * 2)  # page 0 and page 8 -> both bank 0
    mapping = mc.mapping
    assert mapping.decompose(a.addr).bank == mapping.decompose(b.addr).bank
    mc.enqueue(a)
    mc.enqueue(b)
    engine.run()
    assert b.issued_to_dram_at > a.issued_to_dram_at
    assert b.completed_at > a.completed_at


def test_row_hit_rate_stat():
    engine = Engine()
    mc = _mc(engine)
    mc.enqueue(_read(0x0))
    engine.run()
    mc.enqueue(_read(0x40))
    engine.run()
    assert mc.stats.get("row_hits") == 1
    assert mc.stats.get("row_misses") == 1


def test_rejects_bad_quantum():
    with pytest.raises(ValueError):
        _mc(Engine(), quantum=0)
