"""Unit tests for memory access schedulers."""

import pytest

from repro.common.request import AccessType, MemoryRequest
from repro.dram.device import DramDevice
from repro.dram.timing import ddr2_commodity
from repro.memctrl.mapping import AddressMapping
from repro.memctrl.queue import MrqEntry
from repro.memctrl.schedulers import FcfsScheduler, FrFcfsScheduler, make_scheduler


def _entry(addr, arrival, mapping):
    request = MemoryRequest(addr, AccessType.READ)
    return MrqEntry(request, mapping.decompose(addr), arrival)


@pytest.fixture()
def setup():
    mapping = AddressMapping(num_mcs=1, ranks_per_mc=2, banks_per_rank=2)
    device = DramDevice(ddr2_commodity(), num_ranks=2, banks_per_rank=2)
    return mapping, device


def test_fcfs_picks_oldest(setup):
    mapping, device = setup
    entries = [_entry(0x3000, 10, mapping), _entry(0x1000, 5, mapping)]
    assert FcfsScheduler().select(entries, device, now=100).arrival == 5


def test_frfcfs_prefers_open_row(setup):
    mapping, device = setup
    older = _entry(0x1000, 5, mapping)
    newer = _entry(0x5000, 10, mapping)
    # Open the row that `newer` targets.
    c = newer.coords
    device.access(c.rank, c.bank, c.row, start=10_000_000, is_write=False)
    chosen = FrFcfsScheduler().select([older, newer], device, now=100)
    assert chosen is newer


def test_frfcfs_falls_back_to_oldest_without_hits(setup):
    mapping, device = setup
    older = _entry(0x1000, 5, mapping)
    newer = _entry(0x5000, 10, mapping)
    chosen = FrFcfsScheduler().select([older, newer], device, now=100)
    assert chosen is older


def test_frfcfs_oldest_hit_among_several(setup):
    mapping, device = setup
    entries = [_entry(0x1000, 5, mapping), _entry(0x5000, 1, mapping)]
    for entry in entries:
        c = entry.coords
        device.access(c.rank, c.bank, c.row, start=10_000_000, is_write=False)
    chosen = FrFcfsScheduler().select(entries, device, now=100)
    assert chosen.arrival == 1


def test_factory():
    from repro.memctrl.schedulers import WriteDrainScheduler

    assert isinstance(make_scheduler("fcfs"), FcfsScheduler)
    assert isinstance(make_scheduler("fr-fcfs"), FrFcfsScheduler)
    assert isinstance(make_scheduler("frfcfs-writedrain"), WriteDrainScheduler)
    with pytest.raises(ValueError):
        make_scheduler("magic")


def _write_entry(addr, arrival, mapping):
    from repro.common.request import AccessType, MemoryRequest
    from repro.memctrl.queue import MrqEntry

    request = MemoryRequest(addr, AccessType.WRITEBACK)
    return MrqEntry(request, mapping.decompose(addr), arrival)


def test_writedrain_prefers_reads_below_watermark(setup):
    from repro.memctrl.schedulers import WriteDrainScheduler

    mapping, device = setup
    scheduler = WriteDrainScheduler(high_watermark=3, low_watermark=1)
    read = _entry(0x1000, 10, mapping)
    write = _write_entry(0x2000, 1, mapping)  # older than the read
    chosen = scheduler.select([read, write], device, now=50)
    assert chosen is read


def test_writedrain_bursts_when_backlog_high(setup):
    from repro.memctrl.schedulers import WriteDrainScheduler

    mapping, device = setup
    scheduler = WriteDrainScheduler(high_watermark=2, low_watermark=0)
    read = _entry(0x1000, 10, mapping)
    writes = [_write_entry(0x2000 + i * 0x1000, i, mapping) for i in range(3)]
    # Backlog above the high watermark: drain mode serves writes even
    # though a read is pending, and keeps draining next time.
    first = scheduler.select([read] + writes, device, now=50)
    assert first.request.is_write
    second = scheduler.select([read] + writes[1:], device, now=60)
    assert second.request.is_write
    # Down at the low watermark the read wins again.
    third = scheduler.select([read, writes[2]], device, now=70)
    assert third is read or third.request.is_write  # depends on watermark
    drained = scheduler.select([read], device, now=80)
    assert drained is read


def test_writedrain_serves_writes_when_no_reads(setup):
    from repro.memctrl.schedulers import WriteDrainScheduler

    mapping, device = setup
    scheduler = WriteDrainScheduler()
    write = _write_entry(0x2000, 1, mapping)
    assert scheduler.select([write], device, now=10) is write


def test_writedrain_watermark_validation():
    from repro.memctrl.schedulers import WriteDrainScheduler

    with pytest.raises(ValueError):
        WriteDrainScheduler(high_watermark=2, low_watermark=2)
