"""Property tests for the memory schedulers."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.request import AccessType, MemoryRequest
from repro.dram.device import DramDevice
from repro.dram.timing import ddr2_commodity
from repro.memctrl.mapping import AddressMapping
from repro.memctrl.queue import MrqEntry
from repro.memctrl.schedulers import (
    FcfsScheduler,
    FrFcfsScheduler,
    WriteDrainScheduler,
)

MAPPING = AddressMapping(num_mcs=1, ranks_per_mc=2, banks_per_rank=4)


def _entries(spec):
    """spec: list of (page, arrival, is_write)."""
    out = []
    for page, arrival, is_write in spec:
        access = AccessType.WRITEBACK if is_write else AccessType.READ
        request = MemoryRequest(page * 4096, access)
        out.append(MrqEntry(request, MAPPING.decompose(page * 4096), arrival))
    return out


entry_specs = st.lists(
    st.tuples(
        st.integers(0, 31),  # page
        st.integers(0, 1000),  # arrival
        st.booleans(),  # is_write
    ),
    min_size=1,
    max_size=16,
)


@settings(max_examples=80)
@given(spec=entry_specs)
def test_every_scheduler_picks_from_the_ready_list(spec):
    device = DramDevice(ddr2_commodity(), num_ranks=2, banks_per_rank=4)
    ready = _entries(spec)
    for scheduler in (FcfsScheduler(), FrFcfsScheduler(), WriteDrainScheduler()):
        chosen = scheduler.select(list(ready), device, now=2000)
        assert chosen in ready


@settings(max_examples=80)
@given(spec=entry_specs)
def test_fcfs_is_arrival_minimal(spec):
    device = DramDevice(ddr2_commodity(), num_ranks=2, banks_per_rank=4)
    ready = _entries(spec)
    chosen = FcfsScheduler().select(ready, device, now=2000)
    assert chosen.arrival == min(e.arrival for e in ready)


@settings(max_examples=60)
@given(spec=entry_specs, opened_pages=st.sets(st.integers(0, 31), max_size=8))
def test_frfcfs_prefers_hits_when_any_exist(spec, opened_pages):
    device = DramDevice(ddr2_commodity(), num_ranks=2, banks_per_rank=4)
    for page in opened_pages:
        coords = MAPPING.decompose(page * 4096)
        device.access(coords.rank, coords.bank, coords.row,
                      start=10_000_000, is_write=False)
    ready = _entries(spec)
    chosen = FrFcfsScheduler().select(ready, device, now=2000)
    hits = [
        e for e in ready
        if device.is_row_open(e.coords.rank, e.coords.bank, e.coords.row)
    ]
    if hits:
        assert chosen in hits
        assert chosen.arrival == min(e.arrival for e in hits)
    else:
        assert chosen.arrival == min(e.arrival for e in ready)


@settings(max_examples=40)
@given(seed=st.integers(0, 10_000))
def test_writedrain_eventually_serves_everything(seed):
    """Under random mixed traffic the drain state machine starves nobody."""
    rng = random.Random(seed)
    device = DramDevice(ddr2_commodity(), num_ranks=2, banks_per_rank=4)
    scheduler = WriteDrainScheduler(high_watermark=4, low_watermark=1)
    pending = _entries(
        [(rng.randrange(32), i, rng.random() < 0.5) for i in range(24)]
    )
    served = []
    now = 0
    while pending:
        chosen = scheduler.select(pending, device, now)
        pending.remove(chosen)
        served.append(chosen)
        now += 10
    assert len(served) == 24
