"""The memory-side fused drain: bit-identity and fallback discipline.

These are engine-level tests against a bare :class:`MemoryController`
(no cores, no caches): bursts of randomized requests are replayed into
a scalar-pump controller and a fused-drain controller, and the complete
observable record — per-request completion and issue times, row-hit
flags, controller and bus counters — must match exactly.  Refresh is
left *enabled* (unlike the latency unit tests) so fused windows run
into blackout barriers.
"""

import random

import pytest

from repro.common.request import AccessType, MemoryRequest
from repro.dram.bank import Bank
from repro.dram.device import DramDevice
from repro.dram.refresh import RefreshSchedule
from repro.dram.timing import ddr2_commodity
from repro.engine import Engine
from repro.interconnect.bus import Bus
from repro.memctrl.controller import MemoryController
from repro.memctrl.mapping import AddressMapping
from repro.memctrl.queue import MemoryRequestQueue, MrqEntry
from repro.memctrl.schedulers import FcfsScheduler, FrFcfsScheduler


def _mc(engine, scheduler=None, queue_capacity=64, quantum=1):
    mapping = AddressMapping(num_mcs=1, ranks_per_mc=2, banks_per_rank=2)
    device = DramDevice(ddr2_commodity(), num_ranks=2, banks_per_rank=2)
    bus = Bus(width_bytes=64, cycles_per_beat=1, wire_latency=2)
    return MemoryController(
        0, engine, device, bus,
        scheduler if scheduler is not None else FrFcfsScheduler(),
        mapping, queue_capacity=queue_capacity, quantum=quantum,
    )


def _burst_specs(seed, bursts=12, burst_size=16):
    rng = random.Random(seed)
    out = []
    for _ in range(bursts):
        burst = []
        for _ in range(burst_size):
            addr = rng.randrange(0, 1 << 22) & ~0x3F
            is_write = rng.random() < 0.3
            burst.append((addr, is_write))
        out.append(burst)
    return out


def _replay(engine, mc, specs, idle_gap=200):
    """Enqueue bursts while quiescent; returns the completion record."""
    record = []

    def _cb(request):
        record.append((
            engine.now,
            request.addr,
            request.completed_at,
            request.issued_to_dram_at,
            request.row_buffer_hit,
        ))

    for burst in specs:
        for addr, is_write in burst:
            access = AccessType.WRITEBACK if is_write else AccessType.READ
            assert mc.enqueue(MemoryRequest(addr, access, callback=_cb))
        engine.run()
        # Idle forward so the next burst starts from a quiet machine at
        # a deterministic time in both arms.
        engine.schedule_at(engine.now + idle_gap, lambda: None)
        engine.run()
    return record


@pytest.mark.parametrize("scheduler_cls", [FrFcfsScheduler, FcfsScheduler])
@pytest.mark.parametrize("seed", [3, 17])
def test_fused_drain_matches_scalar_pump_exactly(scheduler_cls, seed):
    specs = _burst_specs(seed)
    records, engines, mcs = [], [], []
    for fused in (False, True):
        engine = Engine()
        mc = _mc(engine, scheduler=scheduler_cls())
        if fused:
            mc.enable_fused_drain()
        records.append(_replay(engine, mc, specs))
        engines.append(engine)
        mcs.append(mc)
    assert records[0] == records[1]
    for key in ("issued", "row_hits", "row_misses"):
        assert mcs[1].stats.get(key) == mcs[0].stats.get(key)
    for key in ("transfers", "busy_cycles", "bytes", "queue_cycles"):
        assert mcs[1].bus.stats.get(key) == mcs[0].bus.stats.get(key)
    stats = mcs[1].fused_stats()
    assert stats["enabled"]
    assert stats["fused_issues"] > 0, (
        "burst replay never engaged the drain: %r" % (stats,)
    )
    # The drain's whole point: strictly fewer pump events fired.
    assert engines[1].events_fired < engines[0].events_fired


def test_fused_drain_refuses_shallow_queue():
    engine = Engine()
    mc = _mc(engine)
    mc.enable_fused_drain()
    done = []
    mc.enqueue(MemoryRequest(0x0, AccessType.READ, callback=done.append))
    engine.run()
    stats = mc.fused_stats()
    assert done[0].completed_at is not None
    assert stats["fused_issues"] == 0
    assert stats["breaks"].get("shallow-queue", 0) >= 1
    assert stats["scalar_pumps"] >= 1


def test_fused_drain_ineligible_scheduler_falls_back():
    from repro.memctrl.schedulers import make_scheduler

    engine = Engine()
    mc = _mc(engine, scheduler=make_scheduler("frfcfs-writedrain"))
    mc.enable_fused_drain()
    for addr in (0x0, 0x1000, 0x2000, 0x3000):
        mc.enqueue(MemoryRequest(addr, AccessType.READ))
    engine.run()
    stats = mc.fused_stats()
    assert stats["fused_issues"] == 0
    assert stats["windows"] == 0


# ---------------------------------------------------------------------------
# SoA queue invariants.
# ---------------------------------------------------------------------------


class _FakeBank:
    def __init__(self, tag):
        self.tag = tag


def _entry(i):
    request = MemoryRequest(i * 64, AccessType.READ)
    coords = type("C", (), {"row": i % 4})()
    return request, coords, _FakeBank(i)


def test_queue_columns_stay_aligned():
    q = MemoryRequestQueue(capacity=8)
    entries = []
    for i in range(6):
        request, coords, bank = _entry(i)
        entries.append(q.push(request, coords, now=i * 10, bank=bank))
    assert q.banks == [e.bank for e in q.entries]
    assert q.rows == [e.coords.row for e in q.entries]
    assert q.arrivals == [e.arrival for e in q.entries]
    # Remove from the middle by index, then by identity.
    removed = q.remove_at(2)
    assert removed is entries[2]
    q.remove(entries[4])
    survivors = [entries[0], entries[1], entries[3], entries[5]]
    assert q.entries == survivors
    assert q.banks == [e.bank for e in survivors]
    assert q.rows == [e.coords.row for e in survivors]
    assert q.arrivals == [e.arrival for e in survivors]
    assert len(q) == 4
    assert q.occupancy() == 4 / 8


def test_queue_push_returns_entry_with_bank():
    q = MemoryRequestQueue(capacity=2)
    request, coords, bank = _entry(0)
    entry = q.push(request, coords, now=5, bank=bank)
    assert isinstance(entry, MrqEntry)
    assert entry.bank is bank
    assert entry.arrival == 5
    assert q.is_full is False
    q.push(*_entry(1)[:2], now=6, bank=_FakeBank(1))
    assert q.is_full is True


# ---------------------------------------------------------------------------
# next_blackout_start: the window-barrier clamp.
# ---------------------------------------------------------------------------


def test_next_blackout_start_properties():
    timing = ddr2_commodity()
    schedule = RefreshSchedule(timing, phase=37)
    rng = random.Random(9)
    horizon = 5 * timing.refresh_interval
    for _ in range(300):
        t = rng.randrange(37, horizon)
        start = schedule.next_blackout_start(t)
        assert start >= t
        # The returned cycle is genuinely inside a blackout...
        assert schedule.earliest_available(start) > start
        # ...and every cycle in [t, start) is blackout-free.
        for probe in range(t, min(start, t + 4)):
            assert schedule.earliest_available(probe) == probe
        if start > t:
            assert schedule.earliest_available(start - 1) == start - 1


def test_next_blackout_start_pre_anchor_is_conservative():
    timing = ddr2_commodity()
    schedule = RefreshSchedule(timing, phase=1000)
    # Before the anchor the regime is undefined; the clamp must claim an
    # immediate blackout so fused windows cannot open there.
    assert schedule.next_blackout_start(10) == 10


# ---------------------------------------------------------------------------
# Bulk helpers: access_run and transfer_run.
# ---------------------------------------------------------------------------


def _fresh_bank():
    timing = ddr2_commodity()
    return Bank(timing, RefreshSchedule(timing, phase=123))


def test_bank_access_run_matches_loop():
    rng = random.Random(21)
    for trial in range(10):
        rows = [rng.randrange(0, 6) for _ in range(40)]
        writes = rng.random() < 0.5
        start = rng.randrange(0, 10_000)
        a, b = _fresh_bank(), _fresh_bank()
        got = a.access_run(start, rows, is_write=writes)
        t = start
        want = []
        for row in rows:
            result = b.access(t, row, writes)
            want.append(result)
            t = result[0]
        assert got == want, f"trial {trial}"
        assert a.earliest_start(t) == b.earliest_start(t)
        assert sorted(a.open_rows) == sorted(b.open_rows)
        for key in ("row_hits", "row_misses"):
            assert a.stats.get(key) == b.stats.get(key)


def test_bus_transfer_run_matches_loop():
    rng = random.Random(5)
    starts = [0]
    for _ in range(50):
        starts.append(starts[-1] + rng.randrange(0, 30))
    a = Bus(width_bytes=16, cycles_per_beat=2, wire_latency=3)
    b = Bus(width_bytes=16, cycles_per_beat=2, wire_latency=3)
    got = a.transfer_run(64, starts)
    want = [b.transfer(64, s) for s in starts]
    assert got == want
    assert a.free_at == b.free_at
    for key in ("transfers", "busy_cycles", "bytes", "queue_cycles"):
        assert a.stats.get(key) == b.stats.get(key)
