"""Public API surface checks: everything advertised is importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.engine",
    "repro.common",
    "repro.dram",
    "repro.memctrl",
    "repro.interconnect",
    "repro.cache",
    "repro.mshr",
    "repro.cpu",
    "repro.workloads",
    "repro.stack3d",
    "repro.system",
    "repro.experiments",
    "repro.service",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} is advertised but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_docstrings(package):
    module = importlib.import_module(package)
    assert module.__doc__, f"{package} lacks a module docstring"


def test_top_level_quickstart_names():
    import repro

    for name in ("config_2d", "config_3d_fast", "run_workload",
                 "Machine", "MIXES", "BENCHMARKS", "__version__"):
        assert hasattr(repro, name)


def test_every_public_module_has_docstring():
    import pathlib

    import repro

    root = pathlib.Path(repro.__file__).parent
    checked = 0
    for path in sorted(root.rglob("*.py")):
        if path.name in ("__main__.py",):
            continue
        parts = path.relative_to(root).with_suffix("").parts
        if parts[-1] == "__init__":
            parts = parts[:-1]
        module_name = ".".join(("repro",) + parts)
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        checked += 1
    assert checked > 50  # the whole library really was swept
