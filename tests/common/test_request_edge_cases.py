"""Edge-case tests for request objects and annotations."""

import pytest

from repro.common.request import AccessType, MemoryRequest


def test_annotations_are_per_request():
    a = MemoryRequest(0, AccessType.READ)
    b = MemoryRequest(0, AccessType.READ)
    a.annotations["k"] = 1
    assert "k" not in b.annotations


def test_callback_exception_leaves_request_completed():
    request = MemoryRequest(
        0x40, AccessType.READ,
        callback=lambda r: (_ for _ in ()).throw(RuntimeError("cb boom")),
    )
    with pytest.raises(RuntimeError, match="cb boom"):
        request.complete(5)
    assert request.completed_at == 5
    # A second complete still raises (the first one counted).
    with pytest.raises(RuntimeError, match="completed twice"):
        request.complete(6)


def test_mshr_probe_counter_field():
    request = MemoryRequest(0, AccessType.READ)
    assert request.mshr_probes == 0
    request.mshr_probes += 3
    assert request.mshr_probes == 3


def test_zero_latency_completion():
    request = MemoryRequest(0, AccessType.READ, created_at=100)
    request.complete(100)
    assert request.latency == 0


def test_row_buffer_hit_annotation_lifecycle():
    request = MemoryRequest(0, AccessType.READ)
    assert request.row_buffer_hit is None
    request.row_buffer_hit = True
    assert request.row_buffer_hit is True
