"""Unit tests for MemoryRequest."""

import pytest

from repro.common.request import AccessType, MemoryRequest


def test_access_type_demand_classification():
    assert AccessType.READ.is_demand
    assert AccessType.WRITE.is_demand
    assert not AccessType.WRITEBACK.is_demand
    assert not AccessType.PREFETCH.is_demand


def test_request_ids_are_unique():
    a = MemoryRequest(0x100, AccessType.READ)
    b = MemoryRequest(0x100, AccessType.READ)
    assert a.req_id != b.req_id


def test_is_write_covers_writes_and_writebacks():
    assert MemoryRequest(0, AccessType.WRITE).is_write
    assert MemoryRequest(0, AccessType.WRITEBACK).is_write
    assert not MemoryRequest(0, AccessType.READ).is_write
    assert not MemoryRequest(0, AccessType.PREFETCH).is_write


def test_negative_address_rejected():
    with pytest.raises(ValueError):
        MemoryRequest(-4, AccessType.READ)


def test_latency_none_until_completed():
    request = MemoryRequest(0x40, AccessType.READ, created_at=100)
    assert request.latency is None
    request.complete(250)
    assert request.completed_at == 250
    assert request.latency == 150


def test_complete_fires_callback_once_with_request():
    seen = []
    request = MemoryRequest(0x40, AccessType.READ, callback=seen.append)
    request.complete(10)
    assert seen == [request]


def test_double_complete_raises():
    request = MemoryRequest(0x40, AccessType.READ)
    request.complete(10)
    with pytest.raises(RuntimeError):
        request.complete(20)


def test_callback_cleared_after_completion():
    calls = []
    request = MemoryRequest(0x40, AccessType.READ, callback=lambda r: calls.append(r))
    request.complete(5)
    assert request.callback is None
    assert len(calls) == 1
