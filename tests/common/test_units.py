"""Unit tests for clock/size helpers."""

import pytest

from repro.common.units import (
    CPU_FREQ_GHZ,
    GIB,
    KIB,
    MIB,
    cycles_to_ns,
    is_power_of_two,
    log2int,
    ms_to_cycles,
    ns_to_cycles,
)


def test_table1_timings_convert_exactly():
    # The paper's DRAM parameters in CPU cycles at 3.333 GHz.
    assert ns_to_cycles(36.0) == 120  # tRAS
    assert ns_to_cycles(12.0) == 40  # tRCD/tCAS/tWR/tRP
    assert ns_to_cycles(24.3) == 81  # true-3D tRAS
    assert ns_to_cycles(8.1) == 27  # true-3D others


def test_ns_to_cycles_rounds_up():
    assert ns_to_cycles(0.31) == 2  # just above one cycle
    assert ns_to_cycles(0.3) == 1  # exactly one cycle
    assert ns_to_cycles(0.0) == 0


def test_ns_to_cycles_rejects_negative():
    with pytest.raises(ValueError):
        ns_to_cycles(-1.0)


def test_cycles_to_ns_roundtrip():
    assert cycles_to_ns(ns_to_cycles(36.0)) == pytest.approx(36.0)


def test_refresh_periods():
    # 64 ms / 8192 rows => ~7.8125 us between refreshes.
    assert ms_to_cycles(64.0) // 8192 == 26041
    assert ms_to_cycles(32.0) == ms_to_cycles(64.0) // 2


def test_cpu_frequency_is_table1():
    assert CPU_FREQ_GHZ == pytest.approx(3.3333, abs=1e-3)


def test_size_constants():
    assert KIB == 1024
    assert MIB == 1024 * KIB
    assert GIB == 1024 * MIB


@pytest.mark.parametrize("value", [1, 2, 4, 64, 4096, 1 << 30])
def test_powers_of_two(value):
    assert is_power_of_two(value)
    assert 1 << log2int(value) == value


@pytest.mark.parametrize("value", [0, -4, 3, 12, 100])
def test_non_powers_of_two(value):
    assert not is_power_of_two(value)
    with pytest.raises(ValueError):
        log2int(value)
