"""Poison flag lifecycle and the RAS-path use-after-release guards."""

import pytest

from repro.common.request import (
    AccessType,
    MemoryRequest,
    check_live,
    clear_pool,
    pool_size,
    set_pool_check,
)


@pytest.fixture(autouse=True)
def _clean_pool():
    clear_pool()
    yield
    set_pool_check(False)
    clear_pool()


def test_poisoned_defaults_false_and_survives_annotations():
    req = MemoryRequest(0x1000, AccessType.READ)
    assert req.poisoned is False
    req.poisoned = True
    req.complete(now=10)
    assert req.poisoned is True


def test_recycled_request_is_not_poisoned():
    victim = MemoryRequest.acquire(0x1000, AccessType.READ)
    victim.poisoned = True
    victim.complete(now=5)
    victim.release()
    assert pool_size() == 1
    fresh = MemoryRequest.acquire(0x2000, AccessType.WRITE)
    assert fresh is victim  # reused from the free list...
    assert fresh.poisoned is False  # ...but the poison did not leak
    assert fresh.completed_at is None
    assert fresh.addr == 0x2000  # fresh identity was stamped


def test_check_live_passes_for_inflight_requests():
    set_pool_check(True)
    req = MemoryRequest(0x40, AccessType.READ)
    check_live(req, "ras read pipeline")  # must not raise


def test_check_live_catches_released_request():
    set_pool_check(True)
    req = MemoryRequest(0x40, AccessType.READ)
    req.complete(now=1)
    req.release()
    with pytest.raises(AssertionError, match="already released"):
        check_live(req, "ras retry path")


def test_check_live_catches_completed_request():
    # The RAS retry path must never re-touch a request whose completion
    # callback already ran: the callback chain may release it to the
    # pool, and a later retry would then corrupt a recycled object.
    set_pool_check(True)
    req = MemoryRequest(0x40, AccessType.READ)
    req.complete(now=1)
    with pytest.raises(AssertionError, match="already completed"):
        check_live(req, "ras retry path")


def test_check_live_is_noop_when_disarmed():
    set_pool_check(False)
    req = MemoryRequest(0x40, AccessType.READ)
    req.complete(now=1)
    req.release()
    check_live(req, "ras retry path")  # disarmed: no raise


def test_retry_style_double_release_raises():
    # Regression for the retry path: a request released once by its
    # owner and again by a stale completion must fail loudly even with
    # pool checking disarmed.
    set_pool_check(False)
    req = MemoryRequest.acquire(0x80, AccessType.READ)
    req.complete(now=2)
    req.release()
    with pytest.raises(RuntimeError, match="released twice"):
        req.release()
    assert pool_size() == 1  # the double release did not re-enter the pool
