"""Unit and property tests for the log-bucketed latency histogram."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.histogram import LatencyHistogram


def test_empty_histogram():
    hist = LatencyHistogram()
    assert hist.count == 0
    assert hist.mean == 0.0
    assert hist.percentile(0.5) == 0
    assert "no samples" in hist.format()


def test_basic_stats():
    hist = LatencyHistogram()
    for value in (10, 20, 30):
        hist.record(value)
    assert hist.count == 3
    assert hist.mean == pytest.approx(20.0)
    assert hist.min_value == 10
    assert hist.max_value == 30


def test_bucket_edges():
    hist = LatencyHistogram()
    for value in (0, 1, 2, 3, 4, 7, 8):
        hist.record(value)
    buckets = dict(((low, high), n) for low, high, n in hist.buckets())
    assert buckets[(0, 0)] == 1
    assert buckets[(1, 1)] == 1
    assert buckets[(2, 3)] == 2
    assert buckets[(4, 7)] == 2
    assert buckets[(8, 15)] == 1


def test_percentile_monotone():
    hist = LatencyHistogram()
    for value in range(1, 1000):
        hist.record(value)
    p50 = hist.percentile(0.50)
    p90 = hist.percentile(0.90)
    p99 = hist.percentile(0.99)
    assert p50 <= p90 <= p99
    assert p99 >= 512  # tail reaches the top buckets


def test_percentile_validation():
    hist = LatencyHistogram()
    with pytest.raises(ValueError):
        hist.percentile(0.0)
    with pytest.raises(ValueError):
        hist.percentile(1.5)


def test_negative_rejected():
    with pytest.raises(ValueError):
        LatencyHistogram().record(-1)


def test_merge():
    a, b = LatencyHistogram(), LatencyHistogram()
    a.record(5)
    b.record(500)
    a.merge(b)
    assert a.count == 2
    assert a.min_value == 5
    assert a.max_value == 500


def test_format_contains_bars():
    hist = LatencyHistogram()
    for _ in range(10):
        hist.record(100)
    text = hist.format("read latency")
    assert "read latency" in text
    assert "#" in text


def test_mc_records_read_latencies():
    from repro.common.request import AccessType, MemoryRequest
    from repro.dram.timing import ddr2_commodity
    from repro.engine import Engine
    from repro.interconnect.links import tsv_bus
    from repro.memctrl.memsys import MainMemory

    engine = Engine()
    memory = MainMemory(
        engine, ddr2_commodity(),
        bus_factory=lambda n: tsv_bus(64, name=n), num_mcs=1,
    )
    for page in range(4):
        memory.enqueue(MemoryRequest(page * 4096, AccessType.READ))
    engine.run()
    hist = memory.controllers[0].read_latency
    assert hist.count == 4
    assert hist.mean > 0


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1))
def test_property_counts_and_bounds(samples):
    hist = LatencyHistogram()
    for sample in samples:
        hist.record(sample)
    assert hist.count == len(samples)
    assert hist.total == sum(samples)
    assert hist.min_value == min(samples)
    assert hist.max_value == max(samples)
    # Percentiles are monotone and the 100th percentile's bucket covers
    # the maximum sample (bucket upper bound >= true max).
    assert hist.percentile(0.5) <= hist.percentile(0.9) <= hist.percentile(1.0)
    assert hist.percentile(1.0) >= hist.max_value
