"""Unit tests for the statistics registry."""

from repro.common.stats import StatGroup, StatRegistry


def test_add_and_get():
    group = StatGroup("g")
    group.add("hits")
    group.add("hits", 2)
    assert group.get("hits") == 3
    assert group.get("absent") == 0


def test_set_overwrites():
    group = StatGroup("g")
    group.add("x", 5)
    group.set("x", 1)
    assert group.get("x") == 1


def test_freeze_snapshots_values():
    group = StatGroup("g")
    group.add("misses", 10)
    group.freeze()
    group.add("misses", 90)
    # Reported value stays at the snapshot; live value keeps counting.
    assert group.value("misses") == 10
    assert group.get("misses") == 100
    assert group.is_frozen


def test_freeze_snapshot_includes_later_created_counters_as_default():
    group = StatGroup("g")
    group.freeze()
    group.add("new_counter", 7)
    assert group.value("new_counter") == 0
    assert group.get("new_counter") == 7


def test_items_honours_freeze():
    group = StatGroup("g")
    group.add("a", 1)
    group.freeze()
    group.add("a", 1)
    assert dict(group.items()) == {"a": 1}


def test_ratio():
    group = StatGroup("g")
    group.add("hits", 30)
    group.add("accesses", 40)
    assert group.ratio("hits", "accesses") == 0.75
    assert group.ratio("hits", "absent") == 0.0


def test_registry_returns_same_group():
    registry = StatRegistry()
    a = registry.group("l2")
    b = registry.group("l2")
    assert a is b
    assert "l2" in registry
    assert "l1" not in registry


def test_registry_dump():
    registry = StatRegistry()
    registry.group("b").add("x", 2)
    registry.group("a").add("y", 1)
    dump = registry.dump()
    assert list(dump) == ["a", "b"]  # sorted
    assert dump["b"] == {"x": 2}


def test_as_dict_is_a_copy():
    group = StatGroup("g")
    group.add("x", 1)
    snapshot = group.as_dict()
    snapshot["x"] = 99
    assert group.get("x") == 1


def test_counter_slot_aliases_string_keyed_interface():
    """counter() returns the live slot add()/get()/set() operate on."""
    group = StatGroup("g")
    slot = group.counter("hits")
    assert group.counter("hits") is slot  # stable across calls
    slot.value += 2.0
    assert group.get("hits") == 2.0
    group.add("hits", 3)
    assert slot.value == 5.0
    group.set("hits", 1)
    assert slot.value == 1.0
    slot.add()
    assert group.get("hits") == 2.0


def test_items_yields_insertion_order_without_sorting():
    """Regression: items() must not pay for a per-call sort.

    Keys are inserted out of alphabetical order; items() reports them in
    insertion order, as_dict() in sorted order.
    """
    group = StatGroup("g")
    for key in ("zeta", "alpha", "mid"):
        group.add(key, 1)
    assert [k for k, _ in group.items()] == ["zeta", "alpha", "mid"]
    assert list(group.as_dict()) == ["alpha", "mid", "zeta"]


def test_frozen_items_also_preserve_insertion_order():
    group = StatGroup("g")
    for key in ("b", "a"):
        group.add(key, 1)
    group.freeze()
    assert [k for k, _ in group.items()] == ["b", "a"]
    assert list(group.as_dict()) == ["a", "b"]
