"""Unit and property tests for address helpers and the page allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.address import PageAllocator, line_address, line_index


def test_line_address_alignment():
    assert line_address(0x12345, 64) == 0x12340
    assert line_address(0x12340, 64) == 0x12340
    assert line_index(0x12345, 64) == 0x12345 >> 6


def test_first_touch_allocates_sequential_frames():
    allocator = PageAllocator(page_size=4096)
    # Touch three pages in a scattered virtual order.
    first = allocator.translate(0x9000_0000)
    second = allocator.translate(0x1000)
    third = allocator.translate(0xFFFF_F000)
    assert first >> 12 == 0
    assert second >> 12 == 1
    assert third >> 12 == 2
    assert allocator.allocated_pages == 3


def test_translation_is_stable():
    allocator = PageAllocator()
    a = allocator.translate(0x1234_5678)
    b = allocator.translate(0x1234_5678)
    assert a == b
    assert allocator.allocated_pages == 1


def test_offset_within_page_preserved():
    allocator = PageAllocator(page_size=4096)
    paddr = allocator.translate(0x7000_0ABC)
    assert paddr & 0xFFF == 0xABC


def test_same_page_shares_frame():
    allocator = PageAllocator(page_size=4096)
    a = allocator.translate(0x5000_0000)
    b = allocator.translate(0x5000_0FFF)
    assert a >> 12 == b >> 12
    assert allocator.allocated_pages == 1


def test_capacity_wrap():
    allocator = PageAllocator(page_size=4096, capacity_bytes=2 * 4096)
    frames = [allocator.translate(i * 4096) >> 12 for i in range(4)]
    assert frames[:2] == [0, 1]
    # Beyond capacity, frames wrap instead of failing.
    assert all(f < 2 for f in frames)


def test_rejects_non_power_of_two_page():
    with pytest.raises(ValueError):
        PageAllocator(page_size=3000)


def test_allocated_bytes():
    allocator = PageAllocator(page_size=4096)
    allocator.translate(0)
    allocator.translate(4096)
    assert allocator.allocated_bytes == 2 * 4096


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=2**40 - 1), max_size=200))
def test_property_translation_consistent_and_offsets_preserved(vaddrs):
    allocator = PageAllocator(page_size=4096)
    mapping = {}
    for vaddr in vaddrs:
        paddr = allocator.translate(vaddr)
        assert paddr & 0xFFF == vaddr & 0xFFF
        vpn, pfn = vaddr >> 12, paddr >> 12
        if vpn in mapping:
            assert mapping[vpn] == pfn
        else:
            mapping[vpn] = pfn
    # Frames are dense: 0..n-1 with no gaps.
    assert sorted(mapping.values()) == list(range(len(mapping)))
