"""The MemoryRequest free-list pool: recycling, identity, and guards."""

import pytest

from repro.common import request as request_mod
from repro.common.request import AccessType, MemoryRequest


@pytest.fixture(autouse=True)
def _clean_pool():
    request_mod.clear_pool()
    yield
    request_mod.clear_pool()
    request_mod.set_pool_check(False)


def test_acquire_reuses_released_object():
    first = MemoryRequest.acquire(0x1000, AccessType.READ)
    first.release()
    assert request_mod.pool_size() == 1
    second = MemoryRequest.acquire(0x2000, AccessType.WRITE, core_id=3)
    assert second is first
    assert request_mod.pool_size() == 0
    assert second.addr == 0x2000
    assert second.core_id == 3
    assert second.is_write


def test_acquire_draws_fresh_request_ids():
    first = MemoryRequest.acquire(0x40, AccessType.READ)
    first_id = first.req_id
    first.release()
    second = MemoryRequest.acquire(0x40, AccessType.READ)
    # Recycled object, but the id sequence advances exactly as if a new
    # object had been constructed — pooling is invisible to checkers
    # and transcripts keyed on req_id.
    assert second.req_id == first_id + 1


def test_recycled_request_state_is_fully_reset():
    req = MemoryRequest.acquire(
        0x80, AccessType.READ, callback=lambda r: None
    )
    req.mshr_probes = 7
    req.annotations["mshr_stall_start"] = 123
    req.row_buffer_hit = True
    req.complete(50)
    req.release()

    again = MemoryRequest.acquire(0x80, AccessType.READ)
    assert again.mshr_probes == 0
    assert again.annotations == {}
    assert again.row_buffer_hit is None
    assert again.completed_at is None
    assert again.issued_to_dram_at is None
    assert again.callback is None
    assert again.latency is None


def test_double_release_raises():
    req = MemoryRequest.acquire(0x100, AccessType.READ)
    req.release()
    with pytest.raises(RuntimeError, match="released twice"):
        req.release()


def test_complete_after_release_caught_under_check():
    request_mod.set_pool_check(True)
    req = MemoryRequest.acquire(0x140, AccessType.READ)
    req.release()
    with pytest.raises(AssertionError, match="after release"):
        req.complete(10)


def test_complete_after_release_not_checked_by_default():
    # Without REPRO_CHECK the guard is off; the double-complete guard
    # still applies once completed_at is stamped.
    req = MemoryRequest.acquire(0x180, AccessType.READ)
    req.release()
    req.complete(10)
    assert req.completed_at == 10


def test_release_as_callback_recycles_on_complete():
    wb = MemoryRequest.acquire(
        0x1C0, AccessType.WRITEBACK, callback=MemoryRequest.release
    )
    wb.complete(99)
    assert request_mod.pool_size() == 1


def test_negative_address_rejected_on_reuse_path():
    MemoryRequest.acquire(0x200, AccessType.READ).release()
    with pytest.raises(ValueError, match="negative address"):
        MemoryRequest.acquire(-1, AccessType.READ)
    # The pooled object was not consumed by the failed acquire.
    assert request_mod.pool_size() == 1
