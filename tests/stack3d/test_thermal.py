"""Unit tests for the stack thermal model (Section 2.4's check)."""

import pytest

from repro.stack3d.thermal import (
    DRAM_THERMAL_LIMIT_C,
    StackThermalModel,
    ThermalLayer,
    default_stack,
)


def test_paper_configuration_stays_within_dram_limit():
    # The paper's one thermal result: the worst-case temperature in the
    # stack is within the Samsung SDRAM limit.
    model = default_stack(num_dram_layers=8)
    assert model.within_dram_limit()
    assert model.max_dram_temperature() < DRAM_THERMAL_LIMIT_C


def test_temperature_increases_away_from_sink():
    temps = default_stack().temperatures()
    assert temps == sorted(temps)


def test_all_layers_above_ambient():
    model = default_stack()
    assert min(model.temperatures()) > model.ambient_c


def test_more_cpu_power_heats_the_whole_stack():
    cool = default_stack(cpu_power_w=50.0).temperatures()
    hot = default_stack(cpu_power_w=120.0).temperatures()
    assert all(h > c for h, c in zip(hot, cool))


def test_more_dram_layers_raise_top_temperature():
    short = default_stack(num_dram_layers=4).max_dram_temperature()
    tall = default_stack(num_dram_layers=16).max_dram_temperature()
    assert tall > short


def test_extreme_power_violates_limit():
    model = default_stack(cpu_power_w=400.0)
    assert not model.within_dram_limit()


def test_layer_count_matches_plan():
    model = default_stack(num_dram_layers=8, include_logic_layer=True)
    assert len(model.layers) == 10  # cpu + logic + 8 DRAM


def test_total_power():
    model = default_stack(
        num_dram_layers=2, cpu_power_w=70, dram_layer_power_w=2,
        logic_layer_power_w=3,
    )
    assert model.total_power_w == 77


def test_requires_dram_layers_for_dram_check():
    model = StackThermalModel()
    model.add_layer(ThermalLayer("cpu", 50))
    with pytest.raises(ValueError):
        model.max_dram_temperature()


def test_empty_stack_rejected():
    with pytest.raises(ValueError):
        StackThermalModel().temperatures()


def test_layer_validation():
    with pytest.raises(ValueError):
        ThermalLayer("x", power_w=-1)
    with pytest.raises(ValueError):
        ThermalLayer("x", power_w=1, interface_resistance_kmm2_w=0)


def test_refresh_period_follows_temperature_buckets():
    from repro.stack3d.thermal import refresh_period_for_temperature

    assert refresh_period_for_temperature(70.0) == 64.0
    assert refresh_period_for_temperature(85.0) == 64.0
    assert refresh_period_for_temperature(90.0) == 32.0
    assert refresh_period_for_temperature(100.0) == 16.0
    with pytest.raises(ValueError):
        refresh_period_for_temperature(120.0)


def test_paper_stack_lands_in_the_32ms_bucket_when_hot():
    """The on-stack 32 ms refresh assumption is self-consistent: a hot
    (but in-spec) stack falls in the 85-95 C bucket."""
    from repro.stack3d.thermal import refresh_period_for_temperature

    hot_stack = default_stack(num_dram_layers=8, cpu_power_w=115.0)
    temp = hot_stack.max_dram_temperature()
    assert 85.0 < temp <= 95.0
    assert refresh_period_for_temperature(temp) == 32.0
