"""Stack-mode equivalence battery.

The three stack modes are one subsystem with two degenerate corners,
and the corners must be *exact*:

* ``memory`` mode is bit-identical to the pre-PR simulator (pinned by a
  golden transcript fingerprint) and to the facade's all-direct
  MemCache pass-through;
* ``cache`` mode under the identity configuration (SRAM tags, zero tag
  latency, direct-mapped warm-started frames covering the footprint,
  no SRAM tag cost) produces the same commit-order transcript as
  memory mode — same stack commands, same per-core cycles;
* ``memcache`` at partition 0.0 / 1.0 degenerates exactly to the pure
  memory / cache modes.

Machine-level equivalences run under every runtime checker; the facade
-level properties drive seeded ``tests.strategies.address_stream``
request streams straight into :class:`repro.stack3d.modes.
StackModeMemory` over a matrix of organizations.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.common.request import AccessType, MemoryRequest
from repro.common.stats import StatRegistry
from repro.common.units import MIB
from repro.dram.timing import ddr2_commodity, true_3d
from repro.engine.simulator import Engine
from repro.interconnect.links import offchip_fsb, tsv_bus
from repro.memctrl.memsys import MainMemory
from repro.stack3d.modes import StackModeMemory
from repro.system.config import config_3d_fast
from repro.validate.diff import (
    MODE_ONLY_STAT_PREFIXES,
    diff_modes,
    diff_runs,
    filter_run,
    run_traced,
)

from tests.strategies import address_stream

WARMUP, MEASURE, SEED = 2_000, 5_000, 42

#: Golden fingerprint of the memory-mode DRAM command transcript on the
#: 3D-fast baseline (4x mcf, smoke budgets, seed 42).  Computed on the
#: pre-stack-modes tree: any change here means memory mode is no longer
#: bit-identical to the simulator this PR started from.
GOLDEN_TRANSCRIPT = (1996, "07fe9966485f80de")


def _mcf(config):
    return ["mcf"] * config.num_cores


def _fingerprint(transcript):
    digest = hashlib.sha256()
    for record in transcript:
        digest.update(repr(record).encode())
    return len(transcript), digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# (a) memory mode is the pre-PR simulator
# ----------------------------------------------------------------------
def test_memory_mode_matches_pre_pr_golden():
    config = config_3d_fast()
    run = run_traced(
        config, _mcf(config), warmup=WARMUP, measure=MEASURE, seed=SEED
    )
    assert _fingerprint(run.transcript) == GOLDEN_TRANSCRIPT


def test_memory_mode_bit_identical_to_facade_passthrough():
    config = config_3d_fast()
    report, _, rhs = diff_modes(
        config, _mcf(config), warmup=WARMUP, measure=MEASURE, seed=SEED,
        checkers="all",
    )
    assert report.identical, report.format()
    # The pass-through really went through the facade.
    assert rhs.stats["l4"]["direct_accesses"] > 0
    assert rhs.stats["l4"]["accesses"] == 0


# ----------------------------------------------------------------------
# (b) identity-configured cache mode converges to memory mode
# ----------------------------------------------------------------------
def _identity_cache_config(base):
    return base.derive(
        name=f"{base.name}-l4id",
        stack_mode="cache",
        l4_capacity=8 * MIB,
        l4_tags="sram",
        l4_assoc=1,
        l4_tag_latency=0,
        l4_sram_tag_cost=False,
        l4_warm_start=True,
    )


def test_cache_identity_matches_memory_commit_order():
    base = config_3d_fast()
    lhs = run_traced(
        base, _mcf(base), warmup=WARMUP, measure=MEASURE, seed=SEED,
        checkers="all", label="memory",
    )
    rhs = run_traced(
        _identity_cache_config(base), _mcf(base),
        warmup=WARMUP, measure=MEASURE, seed=SEED,
        checkers="all", label="cache-identity",
    )
    # Capacity >= footprint + warm start: the cache never misses, so it
    # never touches the off-chip channel at all.
    assert not [r for r in rhs.transcript if r.mc >= base.num_mcs]
    view = filter_run(
        rhs, max_mc=base.num_mcs, drop_stat_prefixes=MODE_ONLY_STAT_PREFIXES
    )
    report = diff_runs(lhs, view)
    assert report.identical, report.format()
    # Commit-order equivalence: every core retires the same instruction
    # count in the same number of cycles.
    assert rhs.result.total_cycles == lhs.result.total_cycles
    for mem_core, cache_core in zip(lhs.result.cores, rhs.result.cores):
        assert (mem_core.instructions, mem_core.cycles, mem_core.ipc) == (
            cache_core.instructions, cache_core.cycles, cache_core.ipc
        )


# ----------------------------------------------------------------------
# (c) memcache 0.0 / 1.0 degenerate exactly to the pure modes
# ----------------------------------------------------------------------
def test_memcache_fraction_zero_is_memory_mode():
    base = config_3d_fast()
    lhs = run_traced(
        base, _mcf(base), warmup=WARMUP, measure=MEASURE, seed=SEED,
        label="memory",
    )
    direct = base.derive(
        name=f"{base.name}-direct",
        stack_mode="memcache",
        l4_capacity=base.dram_capacity,
        l4_cache_fraction=0.0,
        l4_repartition_epoch=0,
        l4_sram_tag_cost=False,
    )
    rhs = run_traced(
        direct, _mcf(base), warmup=WARMUP, measure=MEASURE, seed=SEED,
        label="memcache-0.0",
    )
    assert not [r for r in rhs.transcript if r.mc >= base.num_mcs]
    view = filter_run(
        rhs, max_mc=base.num_mcs, drop_stat_prefixes=MODE_ONLY_STAT_PREFIXES
    )
    assert diff_runs(lhs, view).identical


def test_memcache_fraction_one_is_cache_mode():
    base = config_3d_fast()
    l4 = dict(l4_capacity=16 * MIB, l4_tags="sram", l4_assoc=8,
              l4_tag_latency=2)
    cache = base.derive(name="M", stack_mode="cache", **l4)
    memcache = base.derive(
        name="M", stack_mode="memcache", l4_cache_fraction=1.0,
        l4_repartition_epoch=0, **l4,
    )
    lhs = run_traced(
        cache, _mcf(base), warmup=WARMUP, measure=MEASURE, seed=SEED,
        checkers="all", label="cache",
    )
    rhs = run_traced(
        memcache, _mcf(base), warmup=WARMUP, measure=MEASURE, seed=SEED,
        checkers="all", label="memcache-1.0",
    )
    # No projection needed: the two runs must agree on *everything* —
    # both DRAM channels and every stat group, l4 included.
    report = diff_runs(lhs, rhs)
    assert report.identical, report.format()


# ----------------------------------------------------------------------
# Facade-level property battery on seeded address streams
# ----------------------------------------------------------------------
def _build_facade(**overrides):
    engine = Engine()
    registry = StatRegistry()

    def stack_bus(name):
        return tsv_bus(width_bytes=64, stats=registry.group(name), name=name)

    def offchip_bus(name):
        return offchip_fsb(stats=registry.group(name), name=name)

    stack = MainMemory(
        engine, true_3d(), bus_factory=stack_bus, registry=registry,
        num_mcs=1, total_ranks=2, banks_per_rank=2,
        aggregate_queue_capacity=8,
    )
    offchip = MainMemory(
        engine, ddr2_commodity(), bus_factory=offchip_bus, registry=registry,
        num_mcs=1, total_ranks=2, banks_per_rank=2,
        aggregate_queue_capacity=8, first_mc_id=1, stat_prefix="offchip.",
    )
    kwargs = dict(
        mode="cache", capacity=64 * 1024, tags="sram", assoc=4,
        tag_latency=2, predictor="map-i", mshr_entries=4, line_size=64,
    )
    kwargs.update(overrides)
    facade = StackModeMemory(engine, stack, offchip, registry, **kwargs)
    return engine, facade


def _drive(engine, facade, stream, write_every=3, gap=4):
    """Issue the stream one request per ``gap`` cycles; L2-style retry."""
    completed = []
    state = {"next": 0}

    def on_complete(request):
        completed.append(request.addr)
        request.release()

    def issue():
        index = state["next"]
        if index >= len(stream):
            return
        addr = stream[index]
        access = (
            AccessType.WRITE if index % write_every == 0 else AccessType.READ
        )
        request = MemoryRequest.acquire(
            addr, access, pc=(addr >> 6) * 4, created_at=engine.now,
            callback=on_complete,
        )
        if facade.enqueue(request):
            state["next"] += 1
            engine.schedule(gap, issue)
        else:
            facade.wait_for_space(addr, lambda: retry(request))

    def retry(request):
        if facade.enqueue(request):
            state["next"] += 1
            engine.schedule(gap, issue)
        else:
            facade.wait_for_space(request.addr, lambda: retry(request))

    issue()
    engine.run(until=50_000_000)
    return completed


ORGANIZATIONS = [
    dict(),                                              # sram set-assoc
    dict(tags="sram", assoc=1, tag_latency=0),           # sync sram path
    dict(tags="dram", assoc=1, predictor="map-i"),       # alloy + MAP-I
    dict(tags="dram", assoc=1, predictor="always-hit"),  # worst-case serial
    dict(tags="dram", assoc=1, predictor="oracle"),      # perfect
    dict(mode="memcache", cache_fraction=0.5),           # split
    dict(mode="memcache", cache_fraction=0.5,            # live repartition
         repartition_epoch=64, partition_step=0.25,
         fraction_min=0.25, fraction_max=1.0),
    dict(mshr_entries=1),                                # max MSHR pressure
]


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("overrides", ORGANIZATIONS,
                         ids=lambda o: ",".join(f"{k}={v}" for k, v in o.items()) or "default")
def test_every_request_completes_exactly_once(seed, overrides):
    """Conservation under every organization: no request is lost or
    duplicated, and nothing is left in flight after the drain."""
    engine, facade = _build_facade(**overrides)
    stream = address_stream(seed, length=300, pattern="mixed",
                            footprint_lines=2048)
    completed = _drive(engine, facade, stream)
    # Same multiset: every request completed exactly once (completion
    # *order* legitimately differs — hits overtake older misses).
    assert sorted(completed) == sorted(stream)
    assert facade.occupancy() == 0
    stats = dict(facade.stats.items())
    demand = stats["hits"] + stats["misses"] + stats["merges"]
    assert demand + stats["direct_accesses"] >= len(stream) * 0.99
    assert stats["fills"] == stats["offchip_reads"]


@pytest.mark.parametrize("seed", [11, 12])
def test_oracle_predictor_never_mispredicts(seed):
    engine, facade = _build_facade(tags="dram", assoc=1, predictor="oracle")
    stream = address_stream(seed, length=250, pattern="hot",
                            footprint_lines=256)
    _drive(engine, facade, stream)
    assert facade.stats.get("false_hits") == 0
    assert facade.stats.get("false_misses") == 0


def test_memcache_direct_segment_never_allocates():
    """Fraction 0.0: no tag store, no off-chip traffic, pure stack."""
    engine, facade = _build_facade(mode="memcache", cache_fraction=0.0)
    stream = address_stream(5, length=200, pattern="mixed",
                            footprint_lines=512)
    completed = _drive(engine, facade, stream)
    assert sorted(completed) == sorted(stream)
    assert facade.stats.get("direct_accesses") == len(stream)
    assert facade.stats.get("accesses") == 0
    assert facade.stats.get("offchip_reads") == 0


def test_memcache_repartition_flushes_and_stays_sound():
    """A live boundary move mid-stream must not lose requests."""
    engine, facade = _build_facade(
        mode="memcache", cache_fraction=0.5, repartition_epoch=32,
        partition_step=0.25, fraction_min=0.25, fraction_max=1.0,
    )
    # Hot reuse above the direct boundary drives the monitor's hit rate
    # up, forcing at least one boundary move.
    lines = [facade.direct_bytes + (i % 16) * 64 for i in range(600)]
    completed = _drive(engine, facade, lines)
    assert sorted(completed) == sorted(lines)
    assert facade.stats.get("repartitions") >= 1
    assert facade.occupancy() == 0
