"""Unit tests for 3D stack geometry (Section 2.2/2.4 arithmetic)."""

import pytest

from repro.common.units import GIB
from repro.stack3d.geometry import DramDensity, TsvSpec, plan_stack


def test_1kb_bus_area_value():
    # "Even at the high-end with a 10um TSV-pitch, a 1024-bit bus would
    # only require an area of 0.32 mm^2."  Raw pitch-squared packing
    # gives 1024 * (0.01 mm)^2 = 0.1024 mm^2 — the same order; the
    # paper's 0.32 includes keep-out/routing overhead.
    area = TsvSpec(pitch_um=10.0).bus_area_mm2(1024)
    assert area == pytest.approx(0.1024, abs=1e-6)
    assert 0.05 < area < 0.5


def test_three_hundred_buses_per_cm2():
    # "a 1cm^2 chip could support over three hundred of these 1Kb buses"
    tsv = TsvSpec(pitch_um=10.0)
    assert tsv.buses_per_die(100.0, bits=1024) >= 300


def test_tsv_latency_scales_with_layers():
    tsv = TsvSpec()
    assert tsv.latency_ps(20) == pytest.approx(12.0)
    assert tsv.latency_ps(10) == pytest.approx(6.0)
    # Far below one 0.3 ns CPU cycle even for tall stacks.
    assert tsv.latency_ps(20) / 1000.0 < 0.3


def test_density_scaling_matches_paper():
    density = DramDensity()
    # 10.9 Mb/mm^2 at 80 nm -> 27.9 Mb/mm^2 at 50 nm.
    assert density.mbit_per_mm2(80.0) == pytest.approx(10.9)
    assert density.mbit_per_mm2(50.0) == pytest.approx(27.9, abs=0.1)


def test_1gib_layer_footprint_matches_paper():
    # "we assume 1GB per layer, which implies an overall per-layer
    # footprint requirement of 294 mm^2"
    area = DramDensity().area_for_bytes(1 * GIB, node_nm=50.0)
    assert area == pytest.approx(294, abs=15)


def test_plan_stack_for_8gib():
    plan = plan_stack(8 * GIB, 1 * GIB, true_3d=True)
    assert plan.memory_layers == 8
    assert plan.logic_layers == 1
    assert plan.total_layers == 9
    assert plan.die_area_mm2 == pytest.approx(294, abs=15)


def test_plan_stack_without_logic_layer():
    plan = plan_stack(8 * GIB, 1 * GIB, true_3d=False)
    assert plan.total_layers == 8


def test_validation():
    with pytest.raises(ValueError):
        TsvSpec(pitch_um=0)
    with pytest.raises(ValueError):
        TsvSpec().bus_area_mm2(0)
    with pytest.raises(ValueError):
        TsvSpec().latency_ps(0)
    with pytest.raises(ValueError):
        DramDensity().mbit_per_mm2(0)
    with pytest.raises(ValueError):
        plan_stack(100, 200)
