"""Hit/miss predictor battery for the alloy (tags-in-DRAM) L4.

Two kinds of pin:

* **Golden decision streams** — MAP-I is deterministic, so its exact
  predict-bit sequence under a fixed seeded workload is fingerprinted.
  Any change to the hash, table width, counter depth, or update rule
  shows up here before it silently shifts every alloy-mode result.
* **Mispredict storms** — degenerate predictors (always-hit over a
  miss storm, always-miss over a hit-heavy stream) push the facade
  down its worst paths: every access takes the wasted-TAD-read or
  serialized-fetch fallback while a single-entry MSHR throttles fills.
  The property is liveness: the stream drains completely, nothing
  deadlocks behind the MSHR.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.stack3d.predictor import (
    PREDICTOR_KINDS,
    AlwaysHitPredictor,
    AlwaysMissPredictor,
    MapIPredictor,
    OraclePredictor,
    make_predictor,
)

from tests.stack3d.test_mode_equivalence import _build_facade, _drive
from tests.strategies import address_stream

#: sha256 (first 16 hex) over the 500-bit MAP-I decision stream of the
#: recipe in ``_decision_fingerprint``.  Recompute only for a deliberate
#: predictor change — these pin the alloy mode's behaviour.
GOLDEN_DECISIONS = {
    1: "839ca834510778ba",
    2: "7c61043656f9437b",
    3: "79bc1699056138ee",
}


def _decision_fingerprint(seed, entries=64, length=500):
    rng = random.Random(seed)
    predictor = MapIPredictor(entries=entries)
    bits = []
    for _ in range(length):
        pc = rng.randrange(256) * 4
        line = rng.randrange(128) * 64
        bits.append(1 if predictor.predict(line, pc) else 0)
        predictor.update(line, pc, rng.random() < 0.55)
    return hashlib.sha256(bytes(bits)).hexdigest()[:16]


# ----------------------------------------------------------------------
# Golden decision streams
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", sorted(GOLDEN_DECISIONS))
def test_map_i_decision_stream_is_pinned(seed):
    assert _decision_fingerprint(seed) == GOLDEN_DECISIONS[seed]


def test_map_i_decision_stream_is_reproducible():
    # Determinism, separately from the golden value: two fresh
    # predictors fed the same stream agree bit for bit.
    assert _decision_fingerprint(7) == _decision_fingerprint(7)


# ----------------------------------------------------------------------
# MAP-I mechanics
# ----------------------------------------------------------------------
def test_map_i_starts_weakly_predicting_hit():
    predictor = MapIPredictor(entries=8)
    assert predictor.predict(0, 0x400)
    assert all(v == MapIPredictor.THRESHOLD for v in predictor.table)


def test_map_i_counters_saturate_both_ways():
    predictor = MapIPredictor(entries=1)
    for _ in range(20):
        predictor.update(0, 0x400, hit=True)
    assert predictor.table[0] == MapIPredictor.COUNTER_MAX
    assert predictor.predict(0, 0x400)
    for _ in range(20):
        predictor.update(0, 0x400, hit=False)
    assert predictor.table[0] == 0
    assert not predictor.predict(0, 0x400)


def test_map_i_trains_per_pc_not_per_line():
    predictor = MapIPredictor(entries=256)
    hot_pc, cold_pc = 0x1004, 0x2008
    assert predictor._index(hot_pc) != predictor._index(cold_pc)
    for _ in range(8):
        predictor.update(0, cold_pc, hit=False)
    # The miss-trained PC flips to bypass; different lines under the
    # untouched PC still predict hit.
    assert not predictor.predict(12345 * 64, cold_pc)
    assert predictor.predict(12345 * 64, hot_pc)


def test_map_i_rejects_empty_table():
    with pytest.raises(ValueError):
        MapIPredictor(entries=0)


# ----------------------------------------------------------------------
# Factory and the stateless kinds
# ----------------------------------------------------------------------
def test_make_predictor_covers_every_kind():
    truth = lambda line: line == 64
    built = {kind: make_predictor(kind, truth) for kind in PREDICTOR_KINDS}
    assert isinstance(built["oracle"], OraclePredictor)
    assert isinstance(built["always-hit"], AlwaysHitPredictor)
    assert isinstance(built["always-miss"], AlwaysMissPredictor)
    assert isinstance(built["map-i"], MapIPredictor)
    for kind, predictor in built.items():
        assert predictor.name == kind


def test_make_predictor_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_predictor("tage", lambda line: True)


def test_oracle_follows_truth_and_ignores_training():
    resident = set()
    predictor = make_predictor("oracle", lambda line: line in resident)
    assert not predictor.predict(64, 0x400)
    resident.add(64)
    predictor.update(64, 0x400, hit=False)  # lies must not matter
    assert predictor.predict(64, 0x400)


def test_degenerate_predictors_are_constant():
    hit = AlwaysHitPredictor()
    miss = AlwaysMissPredictor()
    for pc in (0, 0x400, 0xFFFF_FFFC):
        hit.update(0, pc, hit=False)
        miss.update(0, pc, hit=True)
        assert hit.predict(pc * 64, pc)
        assert not miss.predict(pc * 64, pc)


# ----------------------------------------------------------------------
# Mispredict storms: fallback paths never deadlock the MSHR
# ----------------------------------------------------------------------
@pytest.mark.parametrize("predictor", ["always-hit", "always-miss", "map-i"])
@pytest.mark.parametrize("mshr_entries", [1, 2])
def test_mispredict_storm_never_deadlocks_mshr(predictor, mshr_entries):
    """A footprint far beyond capacity makes nearly every access miss;
    always-hit then takes the wasted-TAD-read path every time while the
    tiny MSHR stalls fills behind one another.  Every request must
    still complete and the facade must drain dry."""
    engine, facade = _build_facade(
        tags="dram", assoc=1, predictor=predictor,
        capacity=16 * 1024, mshr_entries=mshr_entries,
    )
    stream = address_stream(21, length=400, pattern="random",
                            footprint_lines=4096)
    completed = _drive(engine, facade, stream)
    assert sorted(completed) == sorted(stream)
    assert facade.occupancy() == 0
    stats = dict(facade.stats.items())
    if predictor == "always-hit":
        # The storm really happened: false hits paid the wasted read.
        assert stats["false_hits"] > 0
    if mshr_entries == 1:
        assert stats["mshr_stalls"] > 0
    assert stats["fills"] == stats["offchip_reads"]


def test_hit_storm_under_always_miss_stays_live():
    """The opposite lie: a hot resident set that always-miss keeps
    bypassing.  False misses serialize through the off-chip path but
    must never strand a request."""
    engine, facade = _build_facade(
        tags="dram", assoc=1, predictor="always-miss",
        capacity=64 * 1024, mshr_entries=2,
    )
    stream = address_stream(22, length=300, pattern="hot",
                            footprint_lines=128)
    completed = _drive(engine, facade, stream)
    assert sorted(completed) == sorted(stream)
    assert facade.occupancy() == 0
    assert facade.stats.get("false_misses") > 0
