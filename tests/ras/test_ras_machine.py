"""End-to-end RAS behaviour on a full machine (smoke budgets)."""

import pytest

from repro.common.errors import UncorrectableMemoryError
from repro.ras import RasConfig
from repro.system import config_2d, config_3d, run_workload
from repro.validate.diff import diff_runs, run_traced
from repro.workloads import MIXES

_WARMUP = 2_000
_MEASURE = 8_000
_BENCH = MIXES["H1"].benchmarks


def _run(config, **kwargs):
    return run_workload(
        config, _BENCH, warmup_instructions=_WARMUP,
        measure_instructions=_MEASURE, seed=42, **kwargs
    )


def test_zero_rate_ras_is_bit_identical_to_ras_off():
    """The RAS-off guarantee: hooks on the request path cost nothing.

    ecc="none" has zero storage overhead, so the page layout matches and
    the DRAM command transcript must be byte-for-byte the same.
    """
    off = run_traced(
        config_2d(), _BENCH, warmup=_WARMUP, measure=_MEASURE, label="off"
    )
    on = run_traced(
        config_2d().derive(name="2D+ras0", ras=RasConfig(ecc="none")),
        _BENCH, warmup=_WARMUP, measure=_MEASURE, label="ras0",
    )
    report = diff_runs(off, on)
    assert report.transcripts_identical, report.format()
    assert on.result.hmipc == off.result.hmipc
    extra = on.result.extra
    assert extra["ras_reads"] > 0
    assert extra["ras_corrected"] == 0
    assert extra["ras_penalty_cycles"] == 0


def test_transient_faults_get_corrected_reproducibly():
    config = config_3d().derive(
        name="3D+faults",
        ras=RasConfig(ecc="secded", transient_rate=2e-3, retention_rate=5e-4),
    )
    first = _run(config, checkers="all")
    second = _run(config, checkers="all")
    assert first.extra["ras_corrected"] > 0
    assert first.extra["ras_penalty_cycles"] > 0
    ras_keys = [k for k in first.extra if k.startswith("ras_")]
    assert {k: first.extra[k] for k in ras_keys} == {
        k: second.extra[k] for k in ras_keys
    }
    assert first.hmipc == second.hmipc


def test_retention_burst_escalates_refresh_under_checkers():
    # High retention rate with a tight burst threshold: the refresh
    # multiplier must step up, and the DRAM-timing shadow checker (which
    # replays every command against reference banks) must stay green
    # through the mid-run cadence change.
    config = config_3d().derive(
        name="3D+retention",
        ras=RasConfig(
            ecc="secded", retention_rate=2e-2,
            escalation_threshold=4, escalation_window=200_000,
        ),
    )
    result = _run(config, checkers="all")
    assert result.extra["ras_refresh_escalations"] > 0


def test_hard_bank_failure_retires_and_remaps_under_checkers():
    config = config_3d().derive(
        name="3D+hardfail",
        ras=RasConfig(
            ecc="secded", hard_fail_rate=8e-2, hard_fail_horizon=50,
            bank_retire_threshold=2,
        ),
    )
    result = _run(config, checkers="all")
    extra = result.extra
    assert extra["ras_uncorrected"] > 0
    assert extra["ras_banks_retired"] > 0
    assert extra["ras_remapped_requests"] > 0
    assert extra["ras_machine_checks"] > 0


def test_fatal_machine_check_policy_raises():
    config = config_3d().derive(
        name="3D+fatal",
        ras=RasConfig(
            ecc="secded", hard_fail_rate=8e-2, hard_fail_horizon=50,
            bank_retire_threshold=2, machine_check_policy="fatal",
        ),
    )
    with pytest.raises(UncorrectableMemoryError) as excinfo:
        _run(config)
    err = excinfo.value
    assert err.addr is not None
    assert err.core_id is not None
    assert err.component.startswith("core")
