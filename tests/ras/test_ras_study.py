"""RAS study: matrix construction and result math on synthetic tables."""

import pytest

from repro.experiments.ras_study import (
    BASE_ORDER,
    DEFAULT_ECCS,
    DEFAULT_RATES,
    RasStudyResult,
    build_ras_matrix,
    variant_name,
)
from repro.experiments.runner import ResultTable
from repro.system.machine import CoreResult, MachineResult

RATES = (0.0, 1e-4, 1e-3)


def test_build_ras_matrix_default_shape():
    configs = build_ras_matrix()
    assert len(configs) == len(BASE_ORDER) * len(DEFAULT_ECCS) * len(DEFAULT_RATES)
    names = [c.name for c in configs]
    assert len(set(names)) == len(names)
    assert variant_name("2D", "none", 0.0) in names
    assert variant_name("3D-fast", "secded", 1e-3) in names
    for config in configs:
        assert config.ras is not None
        base, rest = config.name.split("/")
        ecc, rate = rest.split("@")
        assert config.ras.ecc == ecc
        assert config.ras.transient_rate == float(rate)
        assert config.ras.retention_rate == float(rate) / 4


def test_build_ras_matrix_rejects_bad_rate_grids():
    with pytest.raises(ValueError, match="strictly increasing"):
        build_ras_matrix(rates=(1e-3, 1e-4))
    with pytest.raises(ValueError, match="strictly increasing"):
        build_ras_matrix(rates=(0.0, 1e-4, 1e-4))
    with pytest.raises(ValueError, match="at least one"):
        build_ras_matrix(rates=())
    with pytest.raises(ValueError, match="at least one"):
        build_ras_matrix(eccs=())


def _cell(config_name, ipc, penalty, uncorrected, reads=1000.0, cycles=100_000):
    return MachineResult(
        config_name=config_name,
        workload="H1",
        cores=[CoreResult("mcf", ipc, ipc * cycles, cycles, 5.0)],
        total_cycles=cycles,
        l2_stats={},
        dram_row_hit_rate=0.8,
        mshr_avg_probes=1.0,
        extra={
            "ras_penalty_cycles": penalty,
            "ras_reads": reads,
            "ras_corrected": penalty / 10.0,
            "ras_uncorrected": uncorrected,
            "ras_silent": 0.0,
            "ras_banks_retired": 0.0,
        },
    )


def _study(series):
    """Synthetic one-mix study; ``series`` maps rate index -> (penalty, unc)."""
    cells = {}
    for base in BASE_ORDER:
        for i, rate in enumerate(RATES):
            name = variant_name(base, "secded", rate)
            penalty, uncorrected = series[i]
            cells[(name, "H1")] = _cell(name, 0.5 - 0.001 * i, penalty, uncorrected)
    table = ResultTable(
        configs=sorted(n for n, _ in cells), mixes=["H1"], cells=cells
    )
    return RasStudyResult(
        table=table, mixes=["H1"], rates=RATES, eccs=("secded",)
    )


def test_overhead_and_error_rate_math():
    study = _study({0: (0.0, 0.0), 1: (200.0, 2.0), 2: (5000.0, 40.0)})
    assert study.ipc_overhead("2D", "secded", 0.0) == 0.0
    assert study.ipc_overhead("2D", "secded", 1e-4) == pytest.approx(200.0 / 100_000)
    assert study.error_rate("2D", "secded", 1e-3, "uncorrected") == pytest.approx(
        40.0 / 1000.0
    )
    # ipc falls slightly with the rate index in the synthetic cells.
    assert study.measured_dipc("3D", "secded", 0.0) == pytest.approx(0.0)
    assert study.measured_dipc("3D", "secded", 1e-3) < 0.0
    assert study.check_monotone() == []
    formatted = study.format()
    for label in ("IPC ovh%", "dIPC%", "uncorr/kRd", "2D/secded@0.0001"):
        assert label in formatted


def test_check_monotone_flags_regressions():
    # Attributed penalty drops at the highest rate: impossible under the
    # keyed-PRNG subset property, so the check must name it.
    study = _study({0: (0.0, 0.0), 1: (500.0, 1.0), 2: (100.0, 1.0)})
    violations = study.check_monotone()
    assert violations
    assert all("attributed IPC overhead" in v for v in violations)

    study = _study({0: (0.0, 5.0), 1: (10.0, 2.0), 2: (20.0, 8.0)})
    assert any("uncorrected rate" in v for v in study.check_monotone())


def test_zero_denominators_are_safe():
    cells = {}
    for base in BASE_ORDER:
        for rate in RATES:
            name = variant_name(base, "secded", rate)
            cells[(name, "H1")] = _cell(name, 0.5, 0.0, 0.0, reads=0.0, cycles=0)
    study = RasStudyResult(
        table=ResultTable(
            configs=sorted(n for n, _ in cells), mixes=["H1"], cells=cells
        ),
        mixes=["H1"],
        rates=RATES,
        eccs=("secded",),
    )
    assert study.ipc_overhead("2D", "secded", 1e-3) == 0.0
    assert study.error_rate("2D", "secded", 1e-3, "corrected") == 0.0
