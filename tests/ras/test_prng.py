"""Counter-based PRNG: determinism, distribution range, key separation."""

from repro.ras.prng import hash64, stable_label_hash, uniform


def test_hash64_is_deterministic():
    assert hash64(1, 2, 3) == hash64(1, 2, 3)
    assert hash64(0) == hash64(0)


def test_hash64_distinguishes_words_and_order():
    assert hash64(1, 2) != hash64(2, 1)
    assert hash64(1) != hash64(2)
    assert hash64(1) != hash64(1, 0)


def test_hash64_stays_in_64_bits():
    for words in ((0,), (2**63, 2**62), (123456789, 987654321, 5)):
        value = hash64(*words)
        assert 0 <= value < 2**64


def test_uniform_range_and_determinism():
    values = [uniform(0x51, seed, addr) for seed in range(20) for addr in range(20)]
    assert all(0.0 <= v < 1.0 for v in values)
    assert uniform(0x51, 7, 9) == uniform(0x51, 7, 9)
    # Not degenerate: a spread of keys covers a spread of values.
    assert max(values) > 0.9 and min(values) < 0.1


def test_uniform_streams_are_independent():
    # Different stream constants over the same coordinates must not be
    # correlated copies of each other.
    same = sum(
        1 for k in range(200) if (uniform(0x51, k) < 0.5) == (uniform(0x53, k) < 0.5)
    )
    assert 60 < same < 140


def test_stable_label_hash_is_stable_and_distinct():
    # Pinned values: these feed seed derivation, so a change would break
    # cross-version reproducibility of every RAS experiment.
    assert stable_label_hash("2D") == stable_label_hash("2D")
    labels = ["2D", "3D", "3D-fast", "3D/secded@0.0001", ""]
    hashes = {stable_label_hash(label) for label in labels}
    assert len(hashes) == len(labels)
    assert all(0 <= h < 2**64 for h in hashes)


def test_subset_monotonicity_of_threshold_draws():
    """uniform(key) < r1 implies uniform(key) < r2 for r1 <= r2.

    This is the property the whole RAS study leans on: the fault set at
    a lower rate is a subset of the fault set at a higher rate.
    """
    low, high = 0.05, 0.2
    for key in range(500):
        if uniform(0x51, 42, key) < low:
            assert uniform(0x51, 42, key) < high
