"""FaultInjector: accounting, purity, persistence, and monotonicity."""

from repro.ras.config import RasConfig
from repro.ras.injector import FaultInjector, ReadFaults


def _injector(seed=42, **ras_kwargs):
    return FaultInjector(RasConfig(**ras_kwargs), seed)


def test_begin_read_counts_per_line_and_per_bank():
    inj = _injector()
    t0 = inj.begin_read(0, 0, 0, addr=0x1000)
    t1 = inj.begin_read(0, 0, 0, addr=0x1000)
    other = inj.begin_read(0, 0, 0, addr=0x2000)
    assert (t0.generation, t0.nth_read, t0.bank_access) == (0, 0, 1)
    assert (t1.generation, t1.nth_read, t1.bank_access) == (0, 1, 2)
    # A different line restarts the read counter but shares the bank.
    assert (other.nth_read, other.bank_access) == (0, 3)
    assert inj.tracked_lines() == 2
    assert inj.total_reads_accounted() == 3


def test_note_write_bumps_generation_and_resets_reads():
    inj = _injector()
    inj.begin_read(0, 0, 0, 0x40)
    inj.begin_read(0, 0, 0, 0x40)
    inj.note_write(0x40)
    token = inj.begin_read(0, 0, 0, 0x40)
    assert (token.generation, token.nth_read) == (1, 0)
    # Writing a never-read line also establishes generation 1.
    inj.note_write(0x80)
    assert inj.begin_read(0, 0, 0, 0x80).generation == 1


def test_faults_for_is_pure_given_the_token():
    inj = _injector(
        transient_rate=0.3, retention_rate=0.2, stuckat_rate=0.4, hard_fail_rate=0.5,
        hard_fail_horizon=10,
    )
    for addr in range(0, 64 * 40, 64):
        token = inj.begin_read(0, 0, 0, addr)
        first = inj.faults_for(0, 0, 0, token, attempt=1)
        assert inj.faults_for(0, 0, 0, token, attempt=1) == first


def test_retention_persists_across_retries():
    inj = _injector(retention_rate=1.0)
    token = inj.begin_read(0, 0, 0, 0x100)
    for attempt in range(5):
        assert inj.faults_for(0, 0, 0, token, attempt=attempt).retention == 1


def test_transient_rerolls_across_retries():
    inj = _injector(transient_rate=0.5)
    token = inj.begin_read(0, 0, 0, 0x100)
    draws = {
        inj.faults_for(0, 0, 0, token, attempt=a).transient for a in range(30)
    }
    # At rate 0.5 over 30 independent attempts, both outcomes must show
    # up — a retry genuinely re-rolls the transient population.
    assert len(draws) >= 2


def test_refresh_escalation_shrinks_retention_set():
    slow = []
    fast = []
    inj = _injector(retention_rate=0.5)
    for addr in range(0, 64 * 300, 64):
        token = inj.begin_read(0, 0, 0, addr)
        slow.append(inj.faults_for(0, 0, 0, token).retention)
        fast.append(inj.faults_for(0, 0, 0, token, refresh_multiplier=4).retention)
    assert sum(fast) < sum(slow)
    # Subset, not merely smaller: every fault surviving 4x refresh also
    # existed at 1x (same uniform, tighter threshold).
    assert all(s >= f for s, f in zip(slow, fast))


def test_transient_fault_set_is_monotone_in_rate():
    low = _injector(transient_rate=0.1)
    high = _injector(transient_rate=0.3)
    saw_low = saw_extra = 0
    for addr in range(0, 64 * 300, 64):
        t_low = low.begin_read(0, 0, 0, addr)
        t_high = high.begin_read(0, 0, 0, addr)
        f_low = low.faults_for(0, 0, 0, t_low).transient
        f_high = high.faults_for(0, 0, 0, t_high).transient
        assert f_low <= f_high
        saw_low += f_low
        saw_extra += f_high - f_low
    assert saw_low > 0 and saw_extra > 0


def test_hard_failure_fires_once_then_persists():
    inj = _injector(hard_fail_rate=1.0, hard_fail_horizon=10)
    outcomes = []
    for _ in range(16):
        token = inj.begin_read(0, 0, 0, 0x200)
        outcomes.append(inj.faults_for(0, 0, 0, token).hard)
    assert outcomes[0] == 0  # fail_after >= 1: the bank works at first
    assert outcomes[-1] == 8  # horizon 10 guarantees death within 16 reads
    first_dead = outcomes.index(8)
    assert all(h == 0 for h in outcomes[:first_dead])
    assert all(h == 8 for h in outcomes[first_dead:])


def test_hard_failure_draw_is_per_bank():
    inj = _injector(hard_fail_rate=0.5, hard_fail_horizon=5)
    fates = {
        (mc, bank): inj._hard_fail_threshold(mc, 0, bank)
        for mc in range(4)
        for bank in range(8)
    }
    assert any(f >= 0 for f in fates.values())
    assert any(f == -1 for f in fates.values())
    # Same seed, fresh injector: identical fates in another process.
    again = _injector(hard_fail_rate=0.5, hard_fail_horizon=5)
    for (mc, bank), fate in fates.items():
        assert again._hard_fail_threshold(mc, 0, bank) == fate


def test_channel_stuck_is_deterministic_per_seed():
    a = _injector(seed=7, stuckat_rate=0.5)
    b = _injector(seed=7, stuckat_rate=0.5)
    verdicts = [a.channel_stuck(mc) for mc in range(64)]
    assert verdicts == [b.channel_stuck(mc) for mc in range(64)]
    assert any(verdicts) and not all(verdicts)
    # A different seed draws a different channel population.
    c = _injector(seed=8, stuckat_rate=0.5)
    assert verdicts != [c.channel_stuck(mc) for mc in range(64)]


def test_thermal_factor_gated_by_config():
    hot = FaultInjector(RasConfig(thermal_scaling=True), 1, thermal_factor=8.0)
    cold = FaultInjector(RasConfig(thermal_scaling=False), 1, thermal_factor=8.0)
    assert hot.thermal_factor == 8.0
    assert cold.thermal_factor == 1.0


def test_readfaults_totals():
    faults = ReadFaults(transient=2, retention=1, stuckat=1, hard=8)
    assert faults.total == 12
    assert faults.persistent == 10  # a retry cannot shake these
