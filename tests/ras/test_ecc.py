"""ECC scheme classification envelopes."""

import pytest

from repro.ras.ecc import (
    GROSS_CORRUPTION_BITS,
    OUTCOME_CORRECTED,
    OUTCOME_DETECTED,
    OUTCOME_OK,
    OUTCOME_SILENT,
    SCHEMES,
    get_scheme,
)


@pytest.mark.parametrize("name", sorted(SCHEMES))
def test_zero_errors_always_ok(name):
    assert get_scheme(name).classify(0) == OUTCOME_OK


def test_none_scheme_is_blind():
    none = get_scheme("none")
    for bits in (1, 2, 3, GROSS_CORRUPTION_BITS, 64):
        assert none.classify(bits) == OUTCOME_SILENT
    assert none.storage_overhead == 0.0


def test_parity_flags_odd_weights_only():
    parity = get_scheme("parity")
    assert parity.classify(1) == OUTCOME_DETECTED
    assert parity.classify(2) == OUTCOME_SILENT
    assert parity.classify(3) == OUTCOME_DETECTED
    # Gross corruption with even weight still cancels out: parity has
    # no minimum-distance argument against it.
    assert parity.classify(GROSS_CORRUPTION_BITS) == OUTCOME_SILENT


def test_secded_envelope():
    secded = get_scheme("secded")
    assert secded.classify(1) == OUTCOME_CORRECTED
    assert secded.classify(2) == OUTCOME_DETECTED
    assert secded.classify(3) == OUTCOME_SILENT  # aliasing region
    # A dead bank (8+ bits) is not a near-codeword: detected, which is
    # what feeds the bank-retirement path.
    assert secded.classify(GROSS_CORRUPTION_BITS) == OUTCOME_DETECTED
    assert secded.classify(64) == OUTCOME_DETECTED


def test_chipkill_lite_envelope():
    ck = get_scheme("chipkill-lite")
    assert ck.classify(1) == OUTCOME_CORRECTED
    assert ck.classify(2) == OUTCOME_CORRECTED
    assert ck.classify(3) == OUTCOME_DETECTED
    assert ck.classify(4) == OUTCOME_SILENT
    assert ck.classify(GROSS_CORRUPTION_BITS) == OUTCOME_DETECTED


def test_storage_overheads_ordered_by_strength():
    assert (
        SCHEMES["none"].storage_overhead
        < SCHEMES["parity"].storage_overhead
        < SCHEMES["secded"].storage_overhead
        < SCHEMES["chipkill-lite"].storage_overhead
        < 0.25
    )


def test_detect_envelope_contains_correct_envelope():
    for scheme in SCHEMES.values():
        assert scheme.detect_bits >= scheme.correct_bits


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError, match="unknown ECC scheme"):
        get_scheme("raid6")
