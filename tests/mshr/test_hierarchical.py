"""Unit tests specific to the hierarchical (Tuck-style) MSHR."""

from repro.mshr.hierarchical import HierarchicalMshr

LINE = 64


def _lines_for_bank(mshr, bank, count):
    """Line addresses that hash to one bank."""
    found = []
    n = 0
    while len(found) < count:
        if (n % mshr.num_banks) == bank:
            found.append(n * LINE)
        n += 1
    return found


def test_bank_allocation_costs_one_probe():
    mshr = HierarchicalMshr(bank_capacity=2, num_banks=2, shared_capacity=2)
    entry, probes = mshr.allocate(0 * LINE)
    assert entry is not None
    assert probes == 1


def test_overflow_goes_to_shared_level():
    mshr = HierarchicalMshr(bank_capacity=1, num_banks=2, shared_capacity=2)
    bank0 = _lines_for_bank(mshr, 0, 3)
    assert mshr.allocate(bank0[0])[0] is not None  # fills bank 0
    entry, probes = mshr.allocate(bank0[1])  # overflows to shared
    assert entry is not None
    assert probes == 2
    found, probes = mshr.search(bank0[1])
    assert found is entry
    assert probes == 2


def test_bank_conflict_with_full_shared_rejects():
    mshr = HierarchicalMshr(bank_capacity=1, num_banks=2, shared_capacity=1)
    bank0 = _lines_for_bank(mshr, 0, 3)
    assert mshr.allocate(bank0[0])[0] is not None
    assert mshr.allocate(bank0[1])[0] is not None  # shared
    rejected, _ = mshr.allocate(bank0[2])
    assert rejected is None
    # The aggregate file is NOT full — another bank still has room.
    assert not mshr.is_full
    bank1 = _lines_for_bank(mshr, 1, 1)
    assert mshr.allocate(bank1[0])[0] is not None


def test_deallocate_from_shared():
    mshr = HierarchicalMshr(bank_capacity=1, num_banks=2, shared_capacity=1)
    bank0 = _lines_for_bank(mshr, 0, 2)
    mshr.allocate(bank0[0])
    mshr.allocate(bank0[1])
    probes = mshr.deallocate(bank0[1])
    assert probes == 2
    assert mshr.occupancy == 1


def test_capacity_is_aggregate():
    mshr = HierarchicalMshr(bank_capacity=2, num_banks=4, shared_capacity=3)
    assert mshr.capacity == 2 * 4 + 3
