"""Unit tests for the MSHR factory."""

import pytest

from repro.mshr.conventional import ConventionalMshr
from repro.mshr.direct_mapped import DirectMappedMshr
from repro.mshr.factory import ORGANIZATIONS, make_mshr
from repro.mshr.hierarchical import HierarchicalMshr
from repro.mshr.vbf_mshr import VbfMshr


@pytest.mark.parametrize(
    "name, cls",
    [
        ("conventional", ConventionalMshr),
        ("direct-mapped", DirectMappedMshr),
        ("vbf", VbfMshr),
        ("hierarchical", HierarchicalMshr),
    ],
)
def test_factory_builds_each_organization(name, cls):
    assert name in ORGANIZATIONS
    mshr = make_mshr(name, 16)
    assert isinstance(mshr, cls)


@pytest.mark.parametrize("name", ["conventional", "direct-mapped", "vbf"])
def test_capacity_respected(name):
    assert make_mshr(name, 32).capacity == 32


def test_hierarchical_small_capacity_single_bank():
    mshr = make_mshr("hierarchical", 4)
    assert isinstance(mshr, HierarchicalMshr)
    assert mshr.num_banks == 1


def test_unknown_organization_raises_with_known_names():
    with pytest.raises(ValueError, match="conventional"):
        make_mshr("cam2000", 8)
