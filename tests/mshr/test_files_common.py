"""Behavioural tests shared by every MSHR file organization."""

import pytest

from repro.mshr.conventional import ConventionalMshr
from repro.mshr.direct_mapped import DirectMappedMshr
from repro.mshr.hierarchical import HierarchicalMshr
from repro.mshr.quadratic import QuadraticMshr
from repro.mshr.vbf_mshr import VbfMshr

LINE = 64

_KINDS = ["conventional", "direct", "quadratic", "vbf", "hierarchical"]


def _files():
    return [
        ConventionalMshr(8),
        DirectMappedMshr(8, line_size=LINE),
        QuadraticMshr(8, line_size=LINE),
        VbfMshr(8, line_size=LINE),
        HierarchicalMshr(bank_capacity=1, num_banks=4, shared_capacity=4),
    ]


@pytest.fixture(params=_KINDS)
def mshr(request):
    return dict(zip(_KINDS, _files()))[request.param]


def test_allocate_then_search_finds_entry(mshr):
    entry, _ = mshr.allocate(5 * LINE)
    found, probes = mshr.search(5 * LINE)
    assert found is entry
    assert probes >= 1


def test_search_miss_returns_none(mshr):
    found, _ = mshr.search(7 * LINE)
    assert found is None


def test_occupancy_tracks_alloc_dealloc(mshr):
    assert mshr.occupancy == 0
    mshr.allocate(1 * LINE)
    mshr.allocate(2 * LINE)
    assert mshr.occupancy == 2
    mshr.deallocate(1 * LINE)
    assert mshr.occupancy == 1


def test_full_file_rejects_allocation(mshr):
    for i in range(mshr.capacity):
        entry, _ = mshr.allocate(i * LINE)
        if entry is None:
            break  # hierarchical can refuse before aggregate capacity
    rejected, _ = mshr.allocate(999 * LINE)
    assert rejected is None or mshr.occupancy <= mshr.capacity


def test_deallocate_missing_raises(mshr):
    with pytest.raises(KeyError):
        mshr.deallocate(123 * LINE)


def test_duplicate_allocate_raises(mshr):
    mshr.allocate(4 * LINE)
    with pytest.raises(ValueError):
        mshr.allocate(4 * LINE)


def test_dealloc_then_realloc_same_line(mshr):
    mshr.allocate(9 * LINE)
    mshr.deallocate(9 * LINE)
    entry, _ = mshr.allocate(9 * LINE)
    assert entry is not None
    found, _ = mshr.search(9 * LINE)
    assert found is entry


def test_capacity_limit_gates_new_allocations(mshr):
    mshr.set_capacity_limit(2)
    a, _ = mshr.allocate(1 * LINE)
    b, _ = mshr.allocate(2 * LINE)
    c, _ = mshr.allocate(3 * LINE)
    assert a is not None and b is not None
    assert c is None
    # Raising the limit lets allocation proceed again.
    mshr.set_capacity_limit(mshr.capacity)
    d, _ = mshr.allocate(3 * LINE)
    assert d is not None


def test_capacity_limit_validation(mshr):
    with pytest.raises(ValueError):
        mshr.set_capacity_limit(0)
    with pytest.raises(ValueError):
        mshr.set_capacity_limit(mshr.capacity + 1)


def test_contains_untimed(mshr):
    before = mshr.total_accesses
    assert not mshr.contains(3 * LINE)
    mshr.allocate(3 * LINE)
    probe_count_after_alloc = mshr.total_accesses
    assert mshr.contains(3 * LINE)
    # contains() never counts as a timed access.
    assert mshr.total_accesses == probe_count_after_alloc
    assert before + 1 == probe_count_after_alloc  # only the allocate


def test_entry_merging(mshr):
    from repro.common.request import AccessType, MemoryRequest

    entry, _ = mshr.allocate(6 * LINE)
    r1 = MemoryRequest(6 * LINE, AccessType.READ)
    r2 = MemoryRequest(6 * LINE + 8, AccessType.READ)
    entry.merge(r1)
    entry.merge(r2)
    assert entry.requests == [r1, r2]


def test_avg_probes_statistic(mshr):
    mshr.allocate(1 * LINE)
    mshr.search(1 * LINE)
    assert mshr.total_accesses >= 2
    assert mshr.avg_probes_per_access >= 1.0


def test_contains_many_matches_scalar_contains(mshr):
    """The batch probe is a pure vectorization of ``contains``.

    Drive a random allocate/deallocate sequence and, at every step,
    check the batch membership verdicts against per-line ``contains``
    calls — and that batching, like ``contains``, never counts as a
    timed access.
    """
    import random

    rng = random.Random(5)
    lines = [i * LINE for i in range(32)]
    live = set()
    for _ in range(300):
        line = rng.choice(lines)
        if line in live and rng.random() < 0.6:
            mshr.deallocate(line)
            live.discard(line)
        elif line not in live:
            entry, _ = mshr.allocate(line)
            if entry is not None:
                live.add(line)
        probe = [rng.choice(lines) for _ in range(8)]
        accesses_before = mshr.total_accesses
        batch = mshr.contains_many(probe)
        assert mshr.total_accesses == accesses_before
        assert list(batch) == [mshr.contains(x) for x in probe]


def test_contains_many_empty_and_full(mshr):
    assert mshr.contains_many([]) == []
    assert mshr.contains_many([0, LINE, 2 * LINE]) == [False, False, False]
    allocated = []
    for i in range(mshr.capacity):
        entry, _ = mshr.allocate(i * LINE)
        if entry is None:
            break
        allocated.append(i * LINE)
    assert all(mshr.contains_many(allocated))
