"""Model-based property tests: the VBF MSHR vs a dict reference model.

The crucial Bloom-filter property: **no false negatives** — a search for
an allocated line always finds it; a search for an absent line always
reports a miss (possibly after false-hit probes).
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.mshr.direct_mapped import DirectMappedMshr
from repro.mshr.vbf_mshr import VbfMshr

LINE = 64

lines = st.integers(min_value=0, max_value=40).map(lambda n: n * LINE)


@settings(max_examples=100)
@given(st.lists(st.tuples(st.booleans(), lines), max_size=60))
def test_vbf_matches_reference_model(operations):
    mshr = VbfMshr(8, line_size=LINE)
    model = {}
    for is_alloc, line in operations:
        if is_alloc and line not in model and len(model) < 8:
            entry, _ = mshr.allocate(line)
            assert entry is not None
            model[line] = entry
        elif not is_alloc and line in model:
            mshr.deallocate(line)
            del model[line]
        # Invariants after every operation:
        assert mshr.occupancy == len(model)
        for known, entry in model.items():
            found, probes = mshr.search(known)
            assert found is entry, "false negative!"
            assert 1 <= probes <= 8
    # Absent lines always miss.
    for line in set(range(0, 41 * LINE, LINE)) - set(model):
        found, _ = mshr.search(line)
        assert found is None


@settings(max_examples=100)
@given(st.lists(st.tuples(st.booleans(), lines), max_size=60))
def test_vbf_and_linear_probe_agree_on_membership(operations):
    """Both direct-mapped variants must agree with each other exactly."""
    vbf = VbfMshr(8, line_size=LINE)
    plain = DirectMappedMshr(8, line_size=LINE)
    members = set()
    for is_alloc, line in operations:
        if is_alloc and line not in members and len(members) < 8:
            assert vbf.allocate(line)[0] is not None
            assert plain.allocate(line)[0] is not None
            members.add(line)
        elif not is_alloc and line in members:
            vbf.deallocate(line)
            plain.deallocate(line)
            members.remove(line)
        for line_addr in members:
            assert vbf.search(line_addr)[0] is not None
            assert plain.search(line_addr)[0] is not None


@settings(max_examples=60)
@given(st.lists(lines, min_size=1, max_size=8, unique=True))
def test_vbf_probe_count_never_exceeds_linear_probing(allocations):
    """The VBF is a pure accelerator: never more probes than linear scan."""
    vbf = VbfMshr(8, line_size=LINE)
    plain = DirectMappedMshr(8, line_size=LINE)
    for line in allocations:
        vbf.allocate(line)
        plain.allocate(line)
    for line in allocations:
        _, vbf_probes = vbf.search(line)
        _, plain_probes = plain.search(line)
        assert vbf_probes <= plain_probes
    # And on misses, where linear probing must scan everything:
    absent = 99 * LINE
    _, vbf_probes = vbf.search(absent)
    _, plain_probes = plain.search(absent)
    assert vbf_probes <= plain_probes


class VbfMachine(RuleBasedStateMachine):
    """Stateful fuzz of allocate/search/deallocate interleavings."""

    def __init__(self):
        super().__init__()
        self.mshr = VbfMshr(8, line_size=LINE)
        self.model = {}

    @rule(line=lines)
    def allocate(self, line):
        if line in self.model or len(self.model) >= 8:
            return
        entry, probes = self.mshr.allocate(line)
        assert entry is not None
        assert probes >= 1
        self.model[line] = entry

    @rule(line=lines)
    def search(self, line):
        found, probes = self.mshr.search(line)
        assert probes >= 1
        if line in self.model:
            assert found is self.model[line]
        else:
            assert found is None

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def deallocate(self, data):
        line = data.draw(st.sampled_from(sorted(self.model)))
        self.mshr.deallocate(line)
        del self.model[line]

    @invariant()
    def occupancy_consistent(self):
        assert self.mshr.occupancy == len(self.model)

    @invariant()
    def vbf_population_matches_occupancy(self):
        total_bits = sum(
            self.mshr.vbf.population(row) for row in range(8)
        )
        assert total_bits == len(self.model)


TestVbfStateMachine = VbfMachine.TestCase
