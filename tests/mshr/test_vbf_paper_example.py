"""The exact Figure 8 walkthrough from the paper, step by step.

Addresses 13, 22, 29 and 45 in an 8-entry direct-mapped MSHR; home index
is ``address mod 8`` (we shift line numbers into line addresses since the
MSHR hashes line numbers).
"""

from repro.mshr.vbf_mshr import VbfMshr

LINE = 64


def line(addr_number: int) -> int:
    return addr_number * LINE


def test_figure8_full_walkthrough():
    mshr = VbfMshr(8, line_size=LINE)
    vbf = mshr.vbf

    # (a) Miss on address 13: 13 mod 8 = 5; allocate entry 5; VBF row 5
    # gets a 1 in column 0.
    entry13, _ = mshr.allocate(line(13))
    assert entry13 is not None
    assert mshr.home_index(line(13)) == 5
    assert vbf.test(5, 0)

    # (b) Miss on address 22 -> index 6; allocate entry 6; row 6 column 0.
    entry22, _ = mshr.allocate(line(22))
    assert entry22 is not None
    assert vbf.test(6, 0)

    # (c) Address 29 also maps to index 5.  Entry 5 is used, entry 6 is
    # used, so the next sequentially available entry is 7 — two positions
    # from the default, so row 5 column 2 is set.
    entry29, _ = mshr.allocate(line(29))
    assert entry29 is not None
    assert vbf.test(5, 2)
    # A subsequent miss for address 45 maps to the same set and gets
    # entry 0 (displacement 3).
    entry45, _ = mshr.allocate(line(45))
    assert entry45 is not None
    assert vbf.test(5, 3)

    # (d) Search for 29: probe entry 5 and the VBF in parallel (one
    # probe), miss, VBF says next candidate is two away -> probe entry 7,
    # hit.  Two probes total.
    found, probes = mshr.search(line(29))
    assert found is entry29
    assert probes == 2

    # (e) Deallocate 29: invalidate the entry and clear row 5 column 2.
    mshr.deallocate(line(29))
    assert not vbf.test(5, 2)

    # (f) Search for 45: probe 5 (miss), next set bit is column 3 ->
    # check entry 5 + 3 = 0, hit.  With only linear probing this would
    # have taken four probes (5, 6, 7, 0); the VBF needs two (5 and 0).
    found, probes = mshr.search(line(45))
    assert found is entry45
    assert probes == 2


def test_linear_probing_comparison_needs_four_probes():
    """The paper's comparison point: plain linear probing takes 4 probes."""
    from repro.mshr.direct_mapped import DirectMappedMshr

    mshr = DirectMappedMshr(8, line_size=LINE)
    for number in (13, 22, 29, 45):
        entry, _ = mshr.allocate(line(number))
        assert entry is not None
    mshr.deallocate(line(29))
    found, probes = mshr.search(line(45))
    assert found is not None
    assert probes == 4  # checks entries 5, 6, 7, 0


def test_empty_row_is_a_definite_miss_in_one_probe():
    mshr = VbfMshr(8, line_size=LINE)
    mshr.allocate(line(13))  # row 5 populated
    found, probes = mshr.search(line(22))  # home 6, row empty
    assert found is None
    assert probes == 1


def test_false_hit_probes_continue():
    """A set bit can point at an entry from a different home (false hit)."""
    mshr = VbfMshr(8, line_size=LINE)
    mshr.allocate(line(13))  # home 5 -> slot 5
    mshr.allocate(line(29))  # home 5 -> slot 6 (displacement 1)
    # Address 21 has home 5 too but was never allocated; searching for it
    # probes slot 5 (mismatch), then the displacement-1 candidate slot 6
    # (mismatch: holds 29) and stops.  Miss after 2 probes.
    found, probes = mshr.search(line(21))
    assert found is None
    assert probes == 2
