"""Unit tests for the quadratic-probing MSHR (paper footnote 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mshr.quadratic import QuadraticMshr
from repro.mshr.vbf_mshr import VbfMshr

LINE = 64


def test_probe_sequence_is_triangular():
    mshr = QuadraticMshr(8)
    slots = [slot for _, slot in mshr._probe_sequence(0)]
    # home 0: offsets 0, 1, 3, 6, 10, 15, 21, 28 (mod 8)
    assert slots == [0, 1, 3, 6, 2, 7, 5, 4]


def test_probe_sequence_covers_all_slots():
    for capacity in (4, 8, 16, 32):
        mshr = QuadraticMshr(capacity)
        slots = {slot for _, slot in mshr._probe_sequence(5 * LINE)}
        assert len(slots) == capacity


def test_requires_power_of_two_capacity():
    with pytest.raises(ValueError):
        QuadraticMshr(12)


def test_conflicting_allocations_spread_quadratically():
    mshr = QuadraticMshr(8)
    # Three lines with the same home (0): slots 0, 1, 3.
    for n in (0, 8, 16):
        entry, _ = mshr.allocate(n * LINE)
        assert entry is not None
    assert mshr._slots[0] is not None
    assert mshr._slots[1] is not None
    assert mshr._slots[3] is not None


def test_search_and_deallocate():
    mshr = QuadraticMshr(8)
    mshr.allocate(0 * LINE)
    mshr.allocate(8 * LINE)
    found, probes = mshr.search(8 * LINE)
    assert found is not None
    assert probes == 2  # home then first quadratic step
    assert mshr.deallocate(8 * LINE) == 2
    found, _ = mshr.search(8 * LINE)
    assert found is None


def test_fills_to_capacity():
    mshr = QuadraticMshr(8)
    for n in range(8):
        entry, _ = mshr.allocate(n * 8 * LINE)  # all home 0
        assert entry is not None
    assert mshr.occupancy == 8
    rejected, _ = mshr.allocate(999 * LINE)
    assert rejected is None


@settings(max_examples=60)
@given(st.lists(st.tuples(st.booleans(),
                          st.integers(0, 40).map(lambda n: n * LINE)),
                max_size=50))
def test_membership_agrees_with_vbf_variant(operations):
    """Footnote 2's claim: secondary hashing changes probes, not results."""
    quad = QuadraticMshr(8)
    vbf = VbfMshr(8)
    members = set()
    for is_alloc, line in operations:
        if is_alloc and line not in members and len(members) < 8:
            assert quad.allocate(line)[0] is not None
            assert vbf.allocate(line)[0] is not None
            members.add(line)
        elif not is_alloc and line in members:
            quad.deallocate(line)
            vbf.deallocate(line)
            members.remove(line)
        for member in members:
            assert quad.search(member)[0] is not None
            assert vbf.search(member)[0] is not None
