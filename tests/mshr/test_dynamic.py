"""Unit tests for the dynamic MSHR capacity tuner."""

import pytest

from repro.engine import Engine
from repro.mshr.conventional import ConventionalMshr
from repro.mshr.dynamic import CAPACITY_FRACTIONS, DynamicMshrTuner


class FakeProgress:
    """Scripted committed-micro-op curve: a chosen limit is 'best'."""

    def __init__(self, files, best_limit, rate_best=100.0, rate_other=10.0):
        self.files = files
        self.best_limit = best_limit
        self.rate_best = rate_best
        self.rate_other = rate_other
        self.total = 0.0
        self.last_read = 0

    def reader(self, engine):
        def read():
            elapsed = engine.now - self.last_read
            self.last_read = engine.now
            current = self.files[0].capacity_limit
            rate = self.rate_best if current == self.best_limit else self.rate_other
            self.total += elapsed * rate
            return self.total

        return read


def _tuner(engine, files, reader, **kwargs):
    return DynamicMshrTuner(
        engine, files, reader, sample_cycles=100, epoch_cycles=1000, **kwargs
    )


def test_candidate_limits_are_paper_fractions():
    engine = Engine()
    file = ConventionalMshr(64)
    tuner = _tuner(engine, [file], lambda: 0.0)
    assert tuner._candidate_limits(64) == [64, 32, 16]
    assert tuple(CAPACITY_FRACTIONS) == (1.0, 0.5, 0.25)


def test_training_tries_every_setting():
    engine = Engine()
    file = ConventionalMshr(64)
    seen = []
    original = file.set_capacity_limit

    def spy(limit):
        seen.append(limit)
        original(limit)

    file.set_capacity_limit = spy
    tuner = _tuner(engine, [file], lambda: float(engine.now))
    tuner.start()
    engine.run(until=350)
    assert seen[:3] == [64, 32, 16]


def test_tuner_picks_scripted_best_setting():
    engine = Engine()
    file = ConventionalMshr(64)
    progress = FakeProgress([file], best_limit=16)
    tuner = _tuner(engine, [file], progress.reader(engine))
    tuner.start()
    engine.run(until=400)  # past the 3 samples
    assert tuner.chosen_limit == 16
    assert file.capacity_limit == 16


def test_tuner_retrains_each_epoch():
    engine = Engine()
    file = ConventionalMshr(64)
    progress = FakeProgress([file], best_limit=64)
    tuner = _tuner(engine, [file], progress.reader(engine))
    tuner.start()
    engine.run(until=5000)
    assert tuner.trainings >= 2
    assert all(choice == 64 for choice in tuner.selections)


def test_all_files_resized_together():
    engine = Engine()
    files = [ConventionalMshr(32), ConventionalMshr(32)]
    progress = FakeProgress(files, best_limit=8)
    tuner = _tuner(engine, files, progress.reader(engine))
    tuner.start()
    engine.run(until=400)
    assert all(f.capacity_limit == 8 for f in files)


def test_start_is_idempotent():
    engine = Engine()
    file = ConventionalMshr(8)
    tuner = _tuner(engine, [file], lambda: 0.0)
    tuner.start()
    tuner.start()
    engine.run(until=350)
    assert tuner.trainings == 1


def test_validation():
    engine = Engine()
    with pytest.raises(ValueError):
        DynamicMshrTuner(engine, [], lambda: 0.0)
    with pytest.raises(ValueError):
        DynamicMshrTuner(
            engine, [ConventionalMshr(8)], lambda: 0.0, sample_cycles=0
        )


def test_small_file_limits_deduplicate():
    # capacity 2: fractions give [2, 1] (0.5 and 0.25 both round to 1).
    engine = Engine()
    tuner = _tuner(engine, [ConventionalMshr(2)], lambda: 0.0)
    assert tuner._limits == [2, 1]
