"""Unit tests for the standalone Vector Bloom Filter structure."""

import pytest

from repro.mshr.vector_bloom_filter import VectorBloomFilter


def test_set_test_clear():
    vbf = VectorBloomFilter(8)
    assert not vbf.test(3, 2)
    vbf.set(3, 2)
    assert vbf.test(3, 2)
    vbf.clear(3, 2)
    assert not vbf.test(3, 2)


def test_row_empty():
    vbf = VectorBloomFilter(8)
    assert vbf.row_empty(0)
    vbf.set(0, 5)
    assert not vbf.row_empty(0)
    vbf.clear(0, 5)
    assert vbf.row_empty(0)


def test_candidates_in_increasing_order():
    vbf = VectorBloomFilter(8)
    for d in (5, 0, 3):
        vbf.set(2, d)
    assert list(vbf.candidate_displacements(2)) == [0, 3, 5]


def test_rows_are_independent():
    vbf = VectorBloomFilter(4)
    vbf.set(1, 2)
    assert vbf.row_empty(0)
    assert vbf.row_empty(2)
    assert list(vbf.candidate_displacements(1)) == [2]


def test_population():
    vbf = VectorBloomFilter(8)
    vbf.set(4, 1)
    vbf.set(4, 6)
    assert vbf.population(4) == 2
    assert vbf.population(0) == 0


def test_storage_cost_quote():
    # "even for the largest per-bank MSHR size that we consider (32
    # entries), the VBF bit-table only requires 128 bytes of state."
    assert VectorBloomFilter(32).storage_bits == 32 * 32 == 1024
    assert VectorBloomFilter(32).storage_bits // 8 == 128


def test_bounds_checking():
    vbf = VectorBloomFilter(4)
    with pytest.raises(IndexError):
        vbf.set(4, 0)
    with pytest.raises(IndexError):
        vbf.set(0, 4)
    with pytest.raises(IndexError):
        vbf.test(-1, 0)


def test_needs_at_least_one_entry():
    with pytest.raises(ValueError):
        VectorBloomFilter(0)


def test_idempotent_set_and_clear():
    vbf = VectorBloomFilter(4)
    vbf.set(1, 1)
    vbf.set(1, 1)
    assert vbf.population(1) == 1
    vbf.clear(1, 1)
    vbf.clear(1, 1)
    assert vbf.population(1) == 0
