"""Unit tests for sampling plans and the CLI/env spec syntax."""

import pytest

from repro.sampling import ENV_SAMPLE, SamplingPlan, parse_sample_spec, plan_from_env


def test_env_var_name_is_pinned():
    # Scripts and CI reference the variable by name; renaming it is a
    # breaking change.
    assert ENV_SAMPLE == "REPRO_SAMPLE"


def test_defaults_validate():
    plan = SamplingPlan()
    assert plan.detailed >= 1
    assert plan.min_intervals >= 2
    assert plan.interval_span == plan.warmup + plan.detail_warmup + plan.detailed


def test_post_init_rejects_bad_values():
    with pytest.raises(ValueError):
        SamplingPlan(detailed=0)
    with pytest.raises(ValueError):
        SamplingPlan(warmup=-1)
    with pytest.raises(ValueError):
        SamplingPlan(detail_warmup=-5)
    with pytest.raises(ValueError):
        SamplingPlan(min_intervals=1)


def test_intervals_for_floor_and_span():
    plan = SamplingPlan(detailed=100, warmup=300, detail_warmup=100,
                        min_intervals=4)
    # Tiny quota: the min_intervals floor wins.
    assert plan.intervals_for(500) == 4
    # Large quota: enough intervals to span it (ceiling division).
    assert plan.intervals_for(5000) == 10
    assert plan.intervals_for(5001) == 11


def test_parse_none_and_empty():
    assert parse_sample_spec(None) is None
    assert parse_sample_spec("") is None
    assert parse_sample_spec("   ") is None


def test_parse_on_and_default():
    assert parse_sample_spec("on") == SamplingPlan()
    assert parse_sample_spec("default") == SamplingPlan()


def test_parse_overrides_merge_with_defaults():
    plan = parse_sample_spec("detailed:500,warmup:2000")
    assert plan.detailed == 500
    assert plan.warmup == 2000
    assert plan.detail_warmup == SamplingPlan().detail_warmup
    assert plan.min_intervals == SamplingPlan().min_intervals


def test_parse_full_spec_roundtrips():
    plan = SamplingPlan(detailed=800, warmup=3000, detail_warmup=250,
                        min_intervals=12)
    assert parse_sample_spec(plan.spec()) == plan


def test_parse_rejects_unknown_key():
    with pytest.raises(ValueError, match="bad sampling spec"):
        parse_sample_spec("interval:100")


def test_parse_rejects_bad_count():
    with pytest.raises(ValueError, match="bad sampling spec count"):
        parse_sample_spec("detailed:lots")


def test_parse_rejects_missing_colon():
    with pytest.raises(ValueError, match="bad sampling spec"):
        parse_sample_spec("detailed=100")


def test_plan_from_env(monkeypatch):
    monkeypatch.delenv(ENV_SAMPLE, raising=False)
    assert plan_from_env() is None
    monkeypatch.setenv(ENV_SAMPLE, "detailed:600")
    assert plan_from_env() == SamplingPlan(detailed=600)
    monkeypatch.setenv(ENV_SAMPLE, "on")
    assert plan_from_env() == SamplingPlan()
