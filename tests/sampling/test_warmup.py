"""Functional-warmup state coverage and skip-ahead orphaning."""

import pytest

from repro.cache.array import CacheArray
from repro.cache.tlb import Tlb
from repro.sampling.controller import _functional_skip
from repro.system.config import config_2d
from repro.system.machine import Machine
from repro.workloads.mixes import MIXES


def _lines(array: CacheArray) -> int:
    return sum(len(s) for s in array._sets)


# ----------------------------------------------------------------------
# CacheArray.touch — the fused hit-test/LRU/dirty primitive


def test_touch_miss_then_hit():
    array = CacheArray(4096, 4, 64)
    assert array.touch(0x1000) is False          # cold miss: no fill
    assert _lines(array) == 0
    array.fill(array.align(0x1000))
    assert array.touch(0x1000) is True
    assert array.touch(0x1010) is True           # same line, any offset


def test_touch_matches_lookup_lru_order():
    plain = CacheArray(4 * 64, 4, 64)            # one set, four ways
    fused = CacheArray(4 * 64, 4, 64)
    footprint = [i * plain.num_sets * 64 for i in range(6)]
    for addr in footprint[:4]:
        plain.fill(addr)
        fused.fill(addr)
    # Re-reference the first two lines, then overflow the set twice: the
    # fused and plain paths must evict the same victims.
    for addr in footprint[:2]:
        assert plain.lookup(addr) and fused.touch(addr)
    victims_plain = [plain.fill(addr) for addr in footprint[4:]]
    victims_fused = [fused.fill(addr) for addr in footprint[4:]]
    assert victims_plain == victims_fused


def test_touch_dirty_merge():
    array = CacheArray(64, 1, 64)                # single line
    array.fill(0)
    assert array.touch(0, dirty=True) is True
    victim = array.fill(64)                      # evict it
    assert victim == (0, True)


# ----------------------------------------------------------------------
# Tlb.touch — warmup fills without stats


def test_tlb_touch_fills_without_stats():
    tlb = Tlb(entries=8, assoc=2)
    tlb.touch(0x1000)
    assert tlb.contains(0x1000)
    assert tlb.stats.get("hits") == 0
    assert tlb.stats.get("misses") == 0
    # The detailed path then hits what warmup filled.
    assert tlb.access(0x1000) == 0
    assert tlb.stats.get("hits") == 1


# ----------------------------------------------------------------------
# Machine-level: the functional skip warms the hierarchy silently


@pytest.fixture(scope="module")
def skipped_machine():
    mix = MIXES["H1"]
    machine = Machine(
        config_2d(), list(mix.benchmarks), seed=42, workload_name=mix.name
    )
    _functional_skip(machine, 2000)
    return machine


def test_functional_skip_advances_cores(skipped_machine):
    for core in skipped_machine.cores:
        assert core.icount >= 2000


def test_functional_skip_warms_caches_and_tlb(skipped_machine):
    for core in skipped_machine.cores:
        assert _lines(core.l1.array) > 0
        assert core.tlb is None or any(s for s in core.tlb._sets)
    assert _lines(skipped_machine.l2.array) > 0


def test_functional_skip_schedules_nothing(skipped_machine):
    engine = skipped_machine.engine
    assert engine.now == 0
    assert engine.events_fired == 0
    assert skipped_machine.outstanding_requests() == 0


def test_functional_skip_counts_no_stats(skipped_machine):
    l2 = skipped_machine.l2
    assert l2.stats.get("core0_demand_accesses") == 0
    assert l2.stats.get("core0_demand_misses") == 0


# ----------------------------------------------------------------------
# skip_ahead orphaning: a mid-flight core can fast-forward without a
# drain, and the orphaned completions are harmless.


def test_skip_ahead_orphans_in_flight_work():
    mix = MIXES["H1"]
    machine = Machine(
        config_2d(), list(mix.benchmarks), seed=42, workload_name=mix.name
    )
    engine = machine.engine
    for core in machine.cores:
        core.start()
    engine.run(until=3000)
    assert machine.outstanding_requests() > 0     # genuinely mid-flight

    before = [core.icount for core in machine.cores]
    for core in machine.cores:
        assert core.skip_ahead(500) >= 500
        assert not core._outstanding               # orphaned, not drained
    for core, prev in zip(machine.cores, before):
        assert core.icount >= prev + 500

    # Orphaned completions fire and the cores keep committing.
    committed = [core.committed for core in machine.cores]
    engine.run(until=engine.now + 20_000)
    assert all(
        core.committed > prev
        for core, prev in zip(machine.cores, committed)
    )
