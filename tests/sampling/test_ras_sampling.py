"""RAS x sampling interplay: functional warmup must not roll fault state.

The injector keys every fault draw off *detailed*-access counters; the
functional-warmup paths (``functional_touch``/``functional_fetch``)
bypass ``MemoryController._issue`` and never reach it.  These tests pin
that contract: sampled RAS runs are deterministic, the injector accounts
exactly the detailed reads the RAS pipeline checked, and changing the
warmup length does not change which detailed accesses fault.
"""

from repro.ras import RasConfig
from repro.sampling import SamplingPlan
from repro.system.config import config_3d
from repro.system.machine import Machine, run_workload
from repro.workloads.mixes import MIXES

PLAN = SamplingPlan(detailed=300, warmup=600, detail_warmup=100,
                    min_intervals=4)

_RAS = RasConfig(ecc="secded", transient_rate=2e-3, retention_rate=5e-4)


def _config():
    return config_3d().derive(name="3D+ras", ras=_RAS)


def _sampled(plan=PLAN, seed=42):
    mix = MIXES["H1"]
    return run_workload(
        _config(), list(mix.benchmarks),
        warmup_instructions=2000, measure_instructions=8000,
        seed=seed, workload_name=mix.name, sampling=plan,
    )


def _ras_extras(result):
    return {k: v for k, v in result.extra.items() if k.startswith("ras_")}


def test_sampled_ras_run_is_deterministic():
    first = _sampled()
    second = _sampled()
    assert first.extra["sampled"] == 1.0
    assert _ras_extras(first)["ras_reads"] > 0
    assert _ras_extras(first) == _ras_extras(second)
    assert first.hmipc == second.hmipc


def test_injector_accounts_only_detailed_reads():
    mix = MIXES["H1"]
    machine = Machine(
        _config(), list(mix.benchmarks), seed=42, workload_name=mix.name
    )
    machine.run_sampled(PLAN, warmup_instructions=2000,
                        measure_instructions=8000)
    injector = machine.ras.injector
    # Every read the injector ever drew for went through the detailed
    # RAS pipeline (counted in reads_checked); had any functional-warmup
    # touch leaked into the injector, accounting would exceed the
    # pipeline count.
    assert injector.total_reads_accounted() == machine.ras.stats.get(
        "reads_checked"
    )
    assert injector.total_reads_accounted() > 0
    assert injector.tracked_lines() > 0


def test_functional_warmup_cannot_roll_fault_prng():
    """Drive the warmup paths directly: the injector must not move.

    ``_functional_skip`` reaches DRAM through ``functional_fetch`` /
    ``functional_writeback`` / ``functional_touch``, all of which bypass
    ``MemoryController._issue`` — so no warmup volume may mint access
    tokens, bump generations, or consume draws."""
    mix = MIXES["H1"]
    machine = Machine(
        _config(), list(mix.benchmarks), seed=42, workload_name=mix.name
    )
    injector = machine.ras.injector

    # Establish some detailed-read state first, and pin one draw.
    token = injector.begin_read(0, 0, 0, addr=0x4000)
    before = injector.faults_for(0, 0, 0, token)
    lines_before = injector.tracked_lines()
    reads_before = injector.total_reads_accounted()

    memory = machine.memory
    for i in range(5_000):
        addr = 0x4000 + 64 * (i % 512)
        memory.functional_fetch(addr)
        memory.functional_touch(addr, is_write=False)
        if i % 7 == 0:
            memory.functional_writeback(addr)

    assert injector.tracked_lines() == lines_before
    assert injector.total_reads_accounted() == reads_before
    # The pinned access re-derives the identical fault set: warmup
    # traffic neither advanced a generator nor shifted any counter that
    # keys the draws.
    assert injector.faults_for(0, 0, 0, token) == before
    assert machine.ras.stats.get("reads_checked") == 0.0
