"""End-to-end sampled runs: annotations, determinism, wiring."""

import pytest

from repro.sampling import SamplingPlan
from repro.system.config import config_2d
from repro.system.machine import Machine, run_workload
from repro.workloads.mixes import MIXES

#: Small plan keeping these tests fast; 8 intervals at smoke quotas.
PLAN = SamplingPlan(detailed=300, warmup=600, detail_warmup=100,
                    min_intervals=4)


def _sampled(checkers=None, seed=42):
    mix = MIXES["H1"]
    return run_workload(
        config_2d(), list(mix.benchmarks),
        warmup_instructions=2000, measure_instructions=8000,
        seed=seed, workload_name=mix.name, checkers=checkers, sampling=PLAN,
    )


@pytest.fixture(scope="module")
def result():
    return _sampled()


def test_sampled_result_is_plausible(result):
    assert result.hmipc > 0
    assert all(core.ipc > 0 for core in result.cores)
    assert all(core.instructions > 0 for core in result.cores)


def test_sampled_result_annotations(result):
    extra = result.extra
    assert extra["sampled"] == 1.0
    assert extra["sample_intervals"] == PLAN.intervals_for(8000)
    assert extra["sample_detailed_per_interval"] == PLAN.detailed
    assert extra["sample_warmup_per_interval"] == PLAN.warmup
    assert extra["sample_detail_warmup"] == PLAN.detail_warmup
    assert extra["sample_rel_ci95_max"] >= extra["sample_rel_ci95_mean"] >= 0


def test_sampled_run_is_deterministic(result):
    again = _sampled()
    assert again.hmipc == result.hmipc
    assert [c.ipc for c in again.cores] == [c.ipc for c in result.cores]
    assert again.extra == result.extra


def test_sampled_run_passes_runtime_checkers():
    # The final drain leaves a conserved system; every invariant checker
    # must accept a sampled run end to end.
    checked = _sampled(checkers="all")
    assert checked.extra["sampled"] == 1.0


def test_sampled_machine_ends_drained():
    mix = MIXES["H1"]
    machine = Machine(
        config_2d(), list(mix.benchmarks), seed=42, workload_name=mix.name
    )
    machine.run_sampled(PLAN, warmup_instructions=2000,
                        measure_instructions=8000)
    assert machine.outstanding_requests() == 0
    assert len(machine.sample_log) == len(machine.cores)
    for per_core in machine.sample_log:
        assert len(per_core) == PLAN.intervals_for(8000)
        assert all(instr > 0 and cycles > 0 for instr, cycles in per_core)


def test_full_detail_unaffected_by_sampling_param():
    mix = MIXES["H1"]
    full = run_workload(
        config_2d(), list(mix.benchmarks),
        warmup_instructions=2000, measure_instructions=8000,
        seed=42, workload_name=mix.name, sampling=None,
    )
    assert "sampled" not in full.extra
    assert full.hmipc > 0


def test_run_matrix_accepts_sampling_spec(tmp_path):
    from repro.experiments.runner import run_matrix
    from repro.system.scale import get_scale

    mix = MIXES["H1"]
    table = run_matrix(
        [config_2d()], [mix], get_scale("smoke"), seed=42, workers=1,
        sampling=PLAN.spec(),
    )
    cell = table.result(config_2d().name, mix.name)
    assert cell.extra["sampled"] == 1.0
    assert cell.extra["sample_intervals"] == PLAN.intervals_for(8000)


def test_run_matrix_rejects_bad_spec():
    from repro.experiments.runner import run_matrix
    from repro.system.scale import get_scale

    with pytest.raises(ValueError, match="bad sampling spec"):
        run_matrix(
            [config_2d()], [MIXES["H1"]], get_scale("smoke"), seed=42,
            workers=1, sampling="bogus:1",
        )
