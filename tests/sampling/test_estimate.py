"""Unit tests for the dependency-free interval statistics."""

import math

import pytest

from repro.sampling import IntervalEstimate, estimate_mean, t_critical_95


def test_t_critical_tabulated_values():
    assert t_critical_95(1) == pytest.approx(12.706)
    assert t_critical_95(7) == pytest.approx(2.365)
    assert t_critical_95(30) == pytest.approx(2.042)
    assert t_critical_95(120) == pytest.approx(1.980)


def test_t_critical_between_points_is_conservative():
    # Between tabulated dfs the next-lower entry is used; t decreases
    # with df, so that is the wider (conservative) interval.
    assert t_critical_95(21) == t_critical_95(20)
    assert t_critical_95(35) == t_critical_95(30)
    assert t_critical_95(100) == t_critical_95(60)


def test_t_critical_large_df_falls_back_to_normal():
    assert t_critical_95(121) == pytest.approx(1.960)
    assert t_critical_95(10_000) == pytest.approx(1.960)


def test_t_critical_rejects_bad_df():
    with pytest.raises(ValueError):
        t_critical_95(0)


def test_estimate_mean_known_values():
    est = estimate_mean([1.0, 2.0, 3.0])
    assert est.mean == pytest.approx(2.0)
    assert est.samples == 3
    # var = 1, half-width = t(2) * sqrt(1/3)
    assert est.ci95 == pytest.approx(4.303 * math.sqrt(1.0 / 3.0))
    assert est.rel_ci95 == pytest.approx(est.ci95 / 2.0)


def test_estimate_mean_single_sample_has_zero_ci():
    est = estimate_mean([5.0])
    assert est == IntervalEstimate(mean=5.0, ci95=0.0, samples=1)


def test_estimate_mean_identical_samples():
    est = estimate_mean([2.5] * 8)
    assert est.mean == pytest.approx(2.5)
    assert est.ci95 == pytest.approx(0.0)


def test_estimate_mean_empty_raises():
    with pytest.raises(ValueError):
        estimate_mean([])


def test_rel_ci95_zero_mean():
    assert IntervalEstimate(mean=0.0, ci95=1.0, samples=4).rel_ci95 == 0.0
