"""L4 x sampling interplay: functional warmup must keep the shadow
tags sound without training the timing model.

A sampled cache-mode run skips most instructions functionally; those
skipped accesses still move architectural memory state, so they must
flow through the L4 *shadow* tag state (``functional_fetch`` /
``functional_writeback`` / ``functional_touch``) — otherwise the first
detailed interval after a skip sees a cache that missed the entire
warmup and every checker invariant about residency is fiction.  The
mirror constraint: the functional path must NOT touch timing-side
state (the hit/miss predictor, the L4 counters), exactly as RAS
warmup must not roll the fault PRNG (``test_ras_sampling.py``).
"""

from repro.common.units import MIB
from repro.sampling import SamplingPlan
from repro.system.config import config_3d_fast, config_l4_cache
from repro.system.machine import Machine, run_workload
from repro.workloads.mixes import MIXES

PLAN = SamplingPlan(detailed=300, warmup=600, detail_warmup=100,
                    min_intervals=4)


def _config():
    return config_l4_cache(8 * MIB, base=config_3d_fast())


def _sampled(seed=42, checkers="all"):
    mix = MIXES["H1"]
    return run_workload(
        _config(), list(mix.benchmarks),
        warmup_instructions=2000, measure_instructions=8000,
        seed=seed, workload_name=mix.name, sampling=PLAN,
        checkers=checkers,
    )


def test_sampled_cache_mode_runs_under_checkers_and_is_deterministic():
    first = _sampled()
    second = _sampled()
    assert first.extra["sampled"] == 1.0
    assert first.extra["l4_hit_rate"] == second.extra["l4_hit_rate"]
    assert first.extra["l4_offchip_reads"] == second.extra["l4_offchip_reads"]
    assert first.hmipc == second.hmipc
    # The detailed intervals really exercised the cache path.
    assert first.extra["l4_offchip_reads"] > 0


def test_functional_warmup_fills_shadow_tags_not_timing_state():
    """Drive the warmup paths directly against a fresh machine: the
    shadow tag array fills, while the predictor table and every l4
    counter stay untouched."""
    mix = MIXES["H1"]
    machine = Machine(_config(), list(mix.benchmarks), seed=42,
                      workload_name=mix.name)
    facade = machine.l4
    assert facade is not None
    assert facade._tags.resident_lines == 0
    predictor_table = list(facade._predictor.table)
    counters_before = dict(facade.stats.items())

    base = facade.direct_bytes
    for i in range(2_000):
        addr = base + 64 * (i % 256)
        facade.functional_fetch(addr)
        facade.functional_touch(addr, is_write=False)
        if i % 5 == 0:
            facade.functional_writeback(addr)

    assert facade._tags.resident_lines > 0
    assert list(facade._predictor.table) == predictor_table
    assert dict(facade.stats.items()) == counters_before


def test_sampled_run_warms_shadow_tags():
    mix = MIXES["H1"]
    machine = Machine(_config(), list(mix.benchmarks), seed=42,
                      workload_name=mix.name)
    machine.run_sampled(PLAN, warmup_instructions=2000,
                        measure_instructions=8000)
    # By the end of a sampled run the shadow directory holds the
    # workload's resident set — proof the functional skips routed
    # through the L4 rather than around it.
    assert machine.l4._tags.resident_lines > 0
