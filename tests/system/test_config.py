"""Unit tests for system configuration presets."""

import pytest

from repro.common.units import GIB, KIB, MIB
from repro.system.config import (
    SystemConfig,
    config_2d,
    config_3d,
    config_3d_fast,
    config_3d_wide,
    config_aggressive,
    config_dual_mc,
    config_quad_mc,
    with_mshr,
)


def test_baseline_matches_table1():
    config = config_2d()
    assert config.num_cores == 4
    assert config.rob_size == 96
    assert config.dispatch_width == 4
    assert config.l1_size == 24 * KIB and config.l1_assoc == 12
    assert config.l1_mshr_entries == 8
    assert config.l2_size == 12 * MIB and config.l2_assoc == 24
    assert config.l2_banks == 16 and config.l2_latency == 9
    assert config.l2_mshr_per_bank == 8
    assert config.total_ranks == 8 and config.banks_per_rank == 8
    assert config.dram_capacity == 8 * GIB
    assert config.memory_bus == "fsb" and config.mc_quantum == 2


def test_figure4_ladder():
    assert config_2d().dram_timing == "2d"
    c3d = config_3d()
    assert c3d.dram_timing == "3d-commodity"
    assert c3d.memory_bus == "tsv8"
    assert c3d.mc_quantum == 1
    wide = config_3d_wide()
    assert wide.memory_bus == "tsv64"
    assert wide.dram_timing == "3d-commodity"
    fast = config_3d_fast()
    assert fast.memory_bus == "tsv64"
    assert fast.dram_timing == "true-3d"


def test_aggressive_configs():
    dual = config_dual_mc()
    assert (dual.num_mcs, dual.total_ranks, dual.row_buffer_entries) == (2, 8, 4)
    quad = config_quad_mc()
    assert (quad.num_mcs, quad.total_ranks, quad.row_buffer_entries) == (4, 16, 4)
    custom = config_aggressive(num_mcs=2, total_ranks=16, row_buffer_entries=3)
    assert custom.name == "2MC-16R-3RB"


def test_with_mshr_derivation():
    base = config_quad_mc()
    derived = with_mshr(base, organization="vbf", scale=8, dynamic=True)
    assert derived.l2_mshr_organization == "vbf"
    # Scale multiplies the base per-bank capacity (4 at quad-MC).
    assert derived.l2_mshr_per_bank == base.l2_mshr_per_bank * 8 == 32
    assert derived.l2_mshr_dynamic
    assert "vbf-8x-dyn" in derived.name
    # The base is untouched (frozen dataclass).
    assert base.l2_mshr_per_bank == 4


def test_derive_shorthand():
    config = config_2d().derive(num_mcs=2, total_ranks=8)
    assert config.num_mcs == 2


@pytest.mark.parametrize(
    "changes",
    [
        dict(dram_timing="4d"),
        dict(memory_bus="smoke-signals"),
        dict(l2_interleave="diagonal"),
        dict(num_mcs=3),  # 8 ranks don't split by 3
        dict(num_mcs=4, mrq_capacity=30),
        dict(l2_mshr_per_bank=0),
    ],
)
def test_validation(changes):
    with pytest.raises(ValueError):
        config_2d().derive(**changes)


def test_config_is_frozen():
    config = config_2d()
    with pytest.raises(Exception):
        config.num_cores = 8
