"""Unit tests for the command-line interface."""

import pytest

from repro.cli import CONFIGS, build_parser, main


def test_list_benchmarks(capsys):
    assert main(["list", "benchmarks"]) == 0
    out = capsys.readouterr().out
    assert "S.copy" in out and "namd" in out and "paper MPKI" in out


def test_list_mixes(capsys):
    assert main(["list", "mixes"]) == 0
    out = capsys.readouterr().out
    assert "H1" in out and "VH1" in out and "S.all" in out


def test_list_configs(capsys):
    assert main(["list", "configs"]) == 0
    out = capsys.readouterr().out
    for name in CONFIGS:
        assert name in out


def test_run_smoke(capsys, monkeypatch):
    # Shrink the smoke scale further for test speed.
    from repro.system import scale as scale_mod

    tiny = scale_mod.ExperimentScale("smoke", 300, 1000)
    monkeypatch.setitem(scale_mod._SCALES, "smoke", tiny)
    assert main(["run", "--config", "3d-fast", "--mix", "M3"]) == 0
    out = capsys.readouterr().out
    assert "HMIPC" in out
    assert "row-hit rate" in out
    assert "nJ/access" in out


def test_figure4_via_cli(capsys, monkeypatch):
    from repro.system import scale as scale_mod

    tiny = scale_mod.ExperimentScale("smoke", 300, 1000)
    monkeypatch.setitem(scale_mod._SCALES, "smoke", tiny)
    assert main(["figure", "4", "--mixes", "M3", "--workers", "1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out and "3D-fast" in out


def test_table2b_via_cli(capsys, monkeypatch):
    from repro.system import scale as scale_mod

    tiny = scale_mod.ExperimentScale("smoke", 300, 1000)
    monkeypatch.setitem(scale_mod._SCALES, "smoke", tiny)
    assert main(["table", "2b", "--mixes", "M3", "--workers", "1"]) == 0
    assert "Table 2(b)" in capsys.readouterr().out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["teleport"])


def test_parser_rejects_unknown_config():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--config", "4d"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_custom_benchmarks(capsys, monkeypatch):
    from repro.system import scale as scale_mod

    tiny = scale_mod.ExperimentScale("smoke", 300, 1000)
    monkeypatch.setitem(scale_mod._SCALES, "smoke", tiny)
    assert main([
        "run", "--config", "3d-fast",
        "--benchmarks", "gzip,namd,mesa,astar",
    ]) == 0
    out = capsys.readouterr().out
    assert "custom" in out and "gzip" in out


def test_run_custom_benchmarks_wrong_count():
    with pytest.raises(SystemExit, match="4 names"):
        main(["run", "--benchmarks", "gzip,namd"])


def test_analyze_command(capsys, monkeypatch):
    from repro.system import scale as scale_mod

    tiny = scale_mod.ExperimentScale("smoke", 300, 1000)
    monkeypatch.setitem(scale_mod._SCALES, "smoke", tiny)
    assert main(["analyze", "--config", "2d", "--mix", "M3"]) == 0
    out = capsys.readouterr().out
    assert "dominant pressure" in out
    assert "HMIPC" in out


def test_fairness_command(capsys, monkeypatch):
    from repro.system import scale as scale_mod

    tiny = scale_mod.ExperimentScale("smoke", 300, 1000)
    monkeypatch.setitem(scale_mod._SCALES, "smoke", tiny)
    assert main(["fairness", "--config", "3d-fast", "--mix", "M3"]) == 0
    out = capsys.readouterr().out
    assert "weighted speedup" in out


def test_figure_with_journal_and_resume(capsys, monkeypatch, tmp_path):
    from repro.system import scale as scale_mod

    tiny = scale_mod.ExperimentScale("smoke", 300, 1000)
    monkeypatch.setitem(scale_mod._SCALES, "smoke", tiny)
    journal = tmp_path / "fig4.journal.jsonl"
    argv = ["figure", "4", "--mixes", "M3", "--workers", "1",
            "--journal", str(journal)]
    assert main(argv) == 0
    assert journal.exists()
    capsys.readouterr()
    # Resuming re-renders the figure entirely from the journal.
    assert main(argv + ["--resume"]) == 0
    assert "Figure 4" in capsys.readouterr().out


def test_figure_with_injected_failure_degrades(capsys, monkeypatch, tmp_path):
    from repro.experiments import faults
    from repro.system import scale as scale_mod

    tiny = scale_mod.ExperimentScale("smoke", 300, 1000)
    monkeypatch.setitem(scale_mod._SCALES, "smoke", tiny)
    monkeypatch.setenv(faults.ENV_VAR, "raise:3D-wide:M3:-1")
    assert main(["figure", "4", "--mixes", "M3", "--workers", "1"]) == 0
    out = capsys.readouterr().out
    assert "report incomplete" in out
    assert "WARNING: 1 cell(s) failed" in out
    assert "--resume" in out


def test_resilience_flags_parse():
    parser = build_parser()
    args = parser.parse_args(
        ["figure", "4", "--cell-timeout", "30", "--retries", "2", "--resume"]
    )
    assert args.cell_timeout == 30.0
    assert args.retries == 2
    assert args.resume and args.journal is None
