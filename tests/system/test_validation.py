"""The analytic latency model must agree exactly with the simulator."""

import pytest

from repro.common.request import AccessType, MemoryRequest
from repro.engine import Engine
from repro.interconnect.links import offchip_fsb, tsv_bus
from repro.memctrl.memsys import MainMemory
from repro.system.config import config_2d, config_3d, config_3d_fast, config_3d_wide
from repro.system.machine import _timing_for
from repro.system.validation import (
    latency_ladder,
    unloaded_read_latency,
)


def _simulate_one_read(config, second_to_same_row=False):
    """Drive one isolated read (optionally a row-hit follow-up)."""
    engine = Engine()

    def bus_factory(name):
        if config.memory_bus == "fsb":
            return offchip_fsb(name=name)
        width = 8 if config.memory_bus == "tsv8" else 64
        return tsv_bus(width_bytes=width, name=name)

    memory = MainMemory(
        engine,
        _timing_for(config),
        bus_factory=bus_factory,
        num_mcs=config.num_mcs,
        total_ranks=config.total_ranks,
        mc_quantum=config.mc_quantum,
        mc_transaction_overhead=config.mc_transaction_overhead,
    )
    # Park refreshes far away so the isolated read is clean.
    for mc in memory.controllers:
        for rank in mc.device.ranks:
            rank.refresh.phase = 10**9

    first = MemoryRequest(0x0, AccessType.READ, created_at=0)
    memory.enqueue(first)
    engine.run()
    if not second_to_same_row:
        return first.completed_at - first.created_at
    issue_time = engine.now
    second = MemoryRequest(0x40, AccessType.READ, created_at=issue_time)
    memory.enqueue(second)
    engine.run()
    return second.completed_at - issue_time


@pytest.mark.parametrize(
    "factory", [config_2d, config_3d, config_3d_wide, config_3d_fast]
)
def test_simulated_miss_latency_matches_analytic(factory):
    config = factory()
    analytic = unloaded_read_latency(config, row_hit=False).total
    simulated = _simulate_one_read(config)
    assert simulated == analytic


@pytest.mark.parametrize(
    "factory", [config_2d, config_3d, config_3d_wide, config_3d_fast]
)
def test_simulated_hit_latency_matches_analytic(factory):
    config = factory()
    analytic = unloaded_read_latency(config, row_hit=True).total
    simulated = _simulate_one_read(config, second_to_same_row=True)
    assert simulated == analytic


def test_ladder_orders_configurations():
    """Unloaded latencies already tell the Figure 4 story qualitatively."""
    configs = [config_2d(), config_3d(), config_3d_wide(), config_3d_fast()]
    misses = [unloaded_read_latency(c).total for c in configs]
    assert misses[0] > misses[1] >= misses[2] > misses[3]
    text = latency_ladder(configs)
    assert "2D" in text and "3D-fast" in text


def test_breakdown_components():
    breakdown = unloaded_read_latency(config_2d())
    timing = _timing_for(config_2d())
    assert breakdown.row_activate == timing.t_rcd
    assert breakdown.column_access == timing.t_cas
    assert breakdown.first_beat == 2  # one FSB beat
    assert breakdown.command_wire == breakdown.return_wire > 0
    assert breakdown.total == sum(
        (
            breakdown.command_wire,
            breakdown.row_activate,
            breakdown.column_access,
            breakdown.first_beat,
            breakdown.return_wire,
        )
    )
