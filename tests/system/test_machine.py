"""End-to-end tests for machine assembly and the run methodology."""

import pytest

from repro.common.units import MIB
from repro.engine import SimulationError
from repro.mshr.vbf_mshr import VbfMshr
from repro.system.config import config_2d, config_3d_fast, config_quad_mc
from repro.system.machine import Machine, run_workload

FAST_MIX = ["gzip", "namd", "mesa", "astar"]  # light, quick to simulate


def _small(config):
    """Shrink structures so tests run in milliseconds."""
    return config.derive(l2_size=1 * MIB, l2_assoc=16, dram_capacity=64 * MIB)


def test_run_produces_per_core_results():
    result = run_workload(
        _small(config_3d_fast()), FAST_MIX,
        warmup_instructions=1000, measure_instructions=3000,
    )
    assert len(result.cores) == 4
    for core, name in zip(result.cores, FAST_MIX):
        assert core.benchmark == name
        assert core.ipc > 0
        assert core.instructions >= 3000
        assert core.l2_mpki >= 0
    assert 0 < result.hmipc <= 4
    assert result.total_cycles > 0


def test_hmipc_is_harmonic_mean():
    result = run_workload(
        _small(config_3d_fast()), FAST_MIX,
        warmup_instructions=500, measure_instructions=2000,
    )
    expected = 4 / sum(1 / c.ipc for c in result.cores)
    assert result.hmipc == pytest.approx(expected)


def test_benchmark_count_must_match_cores():
    with pytest.raises(ValueError):
        Machine(config_2d(), ["S.all"] * 3)


def test_single_core_machine():
    config = _small(config_2d()).derive(num_cores=1)
    result = run_workload(
        config, ["gzip"], warmup_instructions=500, measure_instructions=2000,
    )
    assert len(result.cores) == 1


def test_seed_changes_results_deterministically():
    kwargs = dict(warmup_instructions=500, measure_instructions=2000)
    a = run_workload(_small(config_3d_fast()), FAST_MIX, seed=1, **kwargs)
    b = run_workload(_small(config_3d_fast()), FAST_MIX, seed=1, **kwargs)
    c = run_workload(_small(config_3d_fast()), FAST_MIX, seed=2, **kwargs)
    assert a.hmipc == b.hmipc  # fully deterministic
    assert a.hmipc != c.hmipc  # seed matters


def test_mshr_organization_is_wired():
    config = _small(config_quad_mc()).derive(
        l2_mshr_organization="vbf", l2_mshr_per_bank=32
    )
    machine = Machine(config, FAST_MIX)
    assert len(machine.l2_mshr_files) == 4  # banked per MC
    assert all(isinstance(f, VbfMshr) for f in machine.l2_mshr_files)
    assert all(f.capacity == 32 for f in machine.l2_mshr_files)


def test_dynamic_tuner_attached_and_running():
    config = _small(config_quad_mc()).derive(
        l2_mshr_per_bank=64, l2_mshr_dynamic=True
    )
    machine = Machine(config, FAST_MIX)
    assert machine.tuner is not None
    machine.run(warmup_instructions=500, measure_instructions=2000)
    assert machine.tuner.trainings >= 1


def test_unbanked_mshr_is_single_file():
    config = _small(config_quad_mc()).derive(l2_mshr_banked=False)
    machine = Machine(config, FAST_MIX)
    assert len(machine.l2_mshr_files) == 1


def test_max_cycles_guard_raises():
    machine = Machine(_small(config_2d()), ["S.all"] * 4)
    with pytest.raises(SimulationError):
        machine.run(
            warmup_instructions=10**9, measure_instructions=1000,
            max_cycles=10_000,
        )


def test_workload_name_recorded():
    result = run_workload(
        _small(config_3d_fast()), FAST_MIX,
        warmup_instructions=500, measure_instructions=1000,
        workload_name="demo",
    )
    assert result.workload == "demo"
    assert result.config_name == "3D-fast"


def test_line_interleave_machine_builds_shared_bus():
    config = _small(config_quad_mc()).derive(l2_interleave="line")
    machine = Machine(config, FAST_MIX)
    assert machine.l2.request_bus is not None
    machine.run(warmup_instructions=200, measure_instructions=500)
