"""Arming rules for the memory-controller fused drain.

The fast path is only provably exact for the plain stacked-memory
machine: batched mode, ``stack_mode == "memory"``, RAS disabled.  Every
other configuration must construct with the drain off so its event
streams are byte-for-byte those of the pre-fast-path simulator.  The
``REPRO_FUSED_MC`` escape hatch (and the ``fused_mc=`` argument that
overrides it) is the operator's way to rule the fast path out when
bisecting a discrepancy.
"""

import pytest

from repro.ras.config import RasConfig
from repro.system.config import config_2d, config_l4_cache, config_memcache
from repro.system.machine import ENV_FUSED_MC, Machine

_BENCH = "S.copy"


def _machine(config, **kwargs):
    benchmarks = [_BENCH] * config.num_cores
    return Machine(config, benchmarks, seed=3, workload_name="gate",
                   **kwargs)


def _drains_armed(machine):
    return [
        mc.fused_stats()["enabled"] for mc in machine.memory.controllers
    ]


def test_batched_memory_mode_arms_drain():
    machine = _machine(config_2d(), batched=True)
    assert machine.fused_mc_enabled
    assert all(_drains_armed(machine))


def test_scalar_mode_does_not_arm_drain():
    machine = _machine(config_2d(), batched=False)
    assert not machine.fused_mc_enabled
    assert not any(_drains_armed(machine))


@pytest.mark.parametrize(
    "config_factory", [config_l4_cache, config_memcache],
    ids=["stack-cache", "stack-memcache"],
)
def test_stacked_cache_modes_never_arm_drain(config_factory):
    machine = _machine(config_factory(), batched=True)
    assert not machine.fused_mc_enabled
    assert not any(_drains_armed(machine))


def test_ras_never_arms_drain():
    config = config_2d().derive(ras=RasConfig(transient_rate=1e-6))
    machine = _machine(config, batched=True)
    assert not machine.fused_mc_enabled
    assert not any(_drains_armed(machine))


def test_explicit_fused_mc_false_disarms():
    machine = _machine(config_2d(), batched=True, fused_mc=False)
    assert not machine.fused_mc_enabled
    assert not any(_drains_armed(machine))


def test_env_var_name_is_pinned():
    # Documented in docs/performance.md and the CLI help; renaming it
    # silently breaks every operator runbook that exports it.
    assert ENV_FUSED_MC == "REPRO_FUSED_MC"


def test_env_var_zero_disarms(monkeypatch):
    monkeypatch.setenv(ENV_FUSED_MC, "0")
    machine = _machine(config_2d(), batched=True)
    assert not machine.fused_mc_enabled
    assert not any(_drains_armed(machine))


def test_explicit_argument_beats_env_var(monkeypatch):
    monkeypatch.setenv(ENV_FUSED_MC, "0")
    machine = _machine(config_2d(), batched=True, fused_mc=True)
    assert machine.fused_mc_enabled
    assert all(_drains_armed(machine))
