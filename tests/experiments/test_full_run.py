"""Unit tests for the full-suite runner."""

import pytest

from repro.experiments.full_run import run_full_suite
from repro.system.scale import ExperimentScale
from repro.workloads.mixes import MIXES

TINY = ExperimentScale("tiny", 300, 1000)


def test_only_filter_and_output_dir(tmp_path):
    reports = run_full_suite(
        scale=TINY,
        mixes=[MIXES["M3"]],
        workers=1,
        output_dir=str(tmp_path),
        only=["figure4"],
        progress=False,
    )
    assert list(reports) == ["figure4"]
    assert "Figure 4" in reports["figure4"]
    assert (tmp_path / "figure4.txt").read_text().startswith("Figure 4")


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError, match="figure4"):
        run_full_suite(only=["figure99"], progress=False)


def test_two_experiments_in_order(tmp_path):
    reports = run_full_suite(
        scale=TINY,
        mixes=[MIXES["M3"]],
        workers=1,
        only=["table2b", "ablation_scheduler"],
        progress=False,
    )
    assert set(reports) == {"table2b", "ablation_scheduler"}
    assert "Table 2(b)" in reports["table2b"]
    assert "scheduler" in reports["ablation_scheduler"]
