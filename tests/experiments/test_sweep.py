"""Unit tests for the generic config sweep utility."""

import pytest

from repro.common.units import MIB
from repro.experiments.sweep import sweep_field
from repro.system.config import config_3d_fast
from repro.system.scale import ExperimentScale
from repro.workloads.mixes import MIXES

TINY = ExperimentScale("tiny", 300, 1000)


def _base():
    return config_3d_fast().derive(
        l2_size=1 * MIB, l2_assoc=16, dram_capacity=64 * MIB
    )


@pytest.fixture(scope="module")
def rob_sweep():
    return sweep_field(
        _base(), "rob_size", [32, 96],
        scale=TINY, mixes=[MIXES["M3"]], workers=1,
    )


def test_sweep_shape(rob_sweep):
    assert rob_sweep.field == "rob_size"
    assert rob_sweep.values == [32, 96]
    assert rob_sweep.gm(32) == pytest.approx(1.0)
    assert rob_sweep.gm(96) > 0


def test_best_value_and_format(rob_sweep):
    assert rob_sweep.best_value() in (32, 96)
    text = rob_sweep.format()
    assert "rob_size" in text and "GM speedup" in text


def test_hmipc_accessor(rob_sweep):
    assert rob_sweep.hmipc(96, "M3") > 0


def test_unknown_field_rejected():
    with pytest.raises(ValueError, match="rob_size"):
        sweep_field(_base(), "turbo_mode", [1, 2], scale=TINY)


def test_duplicate_values_rejected():
    with pytest.raises(ValueError, match="distinct"):
        sweep_field(_base(), "rob_size", [96, 96], scale=TINY)


def test_empty_values_rejected():
    with pytest.raises(ValueError, match="at least one"):
        sweep_field(_base(), "rob_size", [], scale=TINY)
