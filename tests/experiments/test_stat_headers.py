"""Regression pins for stat/report surfaces the stack modes extend.

The L4 facade adds a stat group, result extras, and a study table.
These tests pin the *orderings* — ``StatGroup.items()`` insertion
order, ``MachineResult.extra`` key order, the study table header — so
a refactor that silently reorders them (and thereby perturbs every
golden table and dump downstream) fails here first, and so memory mode
provably gains none of the new surfaces.
"""

from __future__ import annotations

from repro.common.units import MIB
from repro.experiments.stack_modes import (
    DEFAULT_CAPACITIES,
    MODE_ORDER,
    StackModesResult,
)
from repro.system.config import config_3d_fast, config_l4_cache
from repro.system.machine import Machine

from tests.stack3d.test_mode_equivalence import _build_facade

#: The l4 StatGroup's counters in creation order — the order
#: ``items()`` yields and every dump/table renders.  Append-only:
#: inserting a counter anywhere but the end perturbs golden output.
L4_COUNTER_ORDER = (
    "accesses",
    "hits",
    "misses",
    "merges",
    "writeback_hits",
    "writeback_misses",
    "direct_accesses",
    "bypass_accesses",
    "fills",
    "dirty_evictions",
    "offchip_reads",
    "offchip_writebacks",
    "pred_hits",
    "pred_misses",
    "false_hits",
    "false_misses",
    "mshr_stalls",
    "repartitions",
    "flushed_lines",
)

#: ``MachineResult.extra`` key order on a cache-mode machine: the
#: pre-existing energy keys stay first, the l4 keys follow in facade
#: order, the SRAM-tag shave last.
CACHE_MODE_EXTRA_ORDER = (
    "dram_dynamic_nj_per_access",
    "dram_avg_power_mw",
    "l4_hit_rate",
    "l4_offchip_reads",
    "l4_mispredict_rate",
    "l4_cache_fraction",
    "l4_repartitions",
    "l4_tag_shave_bytes",
)

#: Extras appended only when the fused memory-controller drain is armed
#: (batched memory mode) — absent from cache/memcache modes, which never
#: arm it.
FUSED_MC_EXTRA_ORDER = (
    "fused_mc_windows",
    "fused_mc_issues",
    "fused_mc_scalar_pumps",
)


def test_l4_stat_group_items_order_is_pinned():
    _, facade = _build_facade()
    assert tuple(key for key, _ in facade.stats.items()) == L4_COUNTER_ORDER


def test_memory_mode_has_no_l4_surfaces():
    machine = Machine(config_3d_fast(), ["gzip"] * 4)
    assert machine.l4 is None
    groups = machine.registry.dump()
    assert not [n for n in groups if n == "l4" or n.startswith("offchip.")]
    result = machine.run(warmup_instructions=500, measure_instructions=1500)
    # Memory mode's extras: the pre-existing energy keys, then the
    # fused-drain keys (armed by default in batched memory mode) — and
    # none of the l4 surfaces.
    assert tuple(result.extra) == (
        CACHE_MODE_EXTRA_ORDER[:2] + FUSED_MC_EXTRA_ORDER
    )


def test_cache_mode_extra_keys_extend_in_pinned_order():
    config = config_l4_cache(8 * MIB, base=config_3d_fast())
    machine = Machine(config, ["gzip"] * 4)
    result = machine.run(warmup_instructions=500, measure_instructions=1500)
    assert tuple(result.extra) == CACHE_MODE_EXTRA_ORDER
    groups = machine.registry.dump()
    assert "l4" in groups
    assert [n for n in groups if n.startswith("offchip.")]
    # The dump sorts keys within a group; every pinned counter is there.
    assert set(L4_COUNTER_ORDER) <= set(groups["l4"])


class _StubTable:
    """gm_speedup stub: lets format() render without running a sweep."""

    def gm_speedup(self, name, baseline):
        return 1.0


def test_stack_modes_table_header_is_pinned():
    result = StackModesResult(
        table=_StubTable(),
        capacities=list(DEFAULT_CAPACITIES),
        mixes=["H1"],
    )
    lines = result.format().splitlines()
    assert lines[2] == "          memory  L4-sram  L4-alloy  MemCache"
    assert tuple(MODE_ORDER) == ("memory", "L4-sram", "L4-alloy", "MemCache")
    assert lines[4].startswith("32 MiB")
