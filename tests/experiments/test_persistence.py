"""Unit tests for result persistence."""

import json

import pytest

from repro.experiments.persistence import load_table, save_table
from repro.experiments.runner import ResultTable, run_matrix
from repro.system.config import config_3d_fast
from repro.system.scale import ExperimentScale
from repro.workloads.mixes import MIXES

TINY = ExperimentScale("tiny", 300, 1000)


@pytest.fixture(scope="module")
def table():
    from repro.common.units import MIB

    config = config_3d_fast().derive(
        name="small", l2_size=1 * MIB, l2_assoc=16, dram_capacity=64 * MIB
    )
    return run_matrix([config], [MIXES["M3"]], TINY, workers=1)


def test_roundtrip_preserves_everything(tmp_path, table):
    path = tmp_path / "results.json"
    save_table(table, path)
    loaded = load_table(path)
    assert loaded.configs == table.configs
    assert loaded.mixes == table.mixes
    original = table.result("small", "M3")
    restored = loaded.result("small", "M3")
    assert restored.hmipc == pytest.approx(original.hmipc)
    assert restored.total_cycles == original.total_cycles
    assert restored.dram_row_hit_rate == original.dram_row_hit_rate
    assert [c.benchmark for c in restored.cores] == [
        c.benchmark for c in original.cores
    ]
    assert restored.extra == original.extra


def test_loaded_table_supports_analysis(tmp_path, table):
    path = tmp_path / "results.json"
    save_table(table, path)
    loaded = load_table(path)
    assert loaded.speedup("small", "M3", "small") == pytest.approx(1.0)


def test_version_check(tmp_path, table):
    path = tmp_path / "results.json"
    save_table(table, path)
    payload = json.loads(path.read_text())
    payload["format_version"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="version"):
        load_table(path)


def test_file_is_stable_json(tmp_path, table):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    save_table(table, a)
    save_table(table, b)
    assert a.read_text() == b.read_text()  # deterministic serialization


def test_save_leaves_no_temp_files(tmp_path, table):
    path = tmp_path / "results.json"
    save_table(table, path)
    save_table(table, path)  # overwrite goes through the same temp path
    assert [p.name for p in tmp_path.iterdir()] == ["results.json"]


def test_version_1_files_still_load(tmp_path, table):
    """Files written before the failures field (v1) remain readable."""
    path = tmp_path / "results.json"
    save_table(table, path)
    payload = json.loads(path.read_text())
    payload["format_version"] = 1
    del payload["failures"]
    path.write_text(json.dumps(payload))
    loaded = load_table(path)
    assert loaded.failures == {}
    assert loaded.result("small", "M3").hmipc == pytest.approx(
        table.result("small", "M3").hmipc
    )


def test_future_version_rejected_with_clear_error(tmp_path, table):
    path = tmp_path / "results.json"
    save_table(table, path)
    payload = json.loads(path.read_text())
    payload["format_version"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="newer release"):
        load_table(path)


def test_failures_roundtrip(tmp_path, table):
    from repro.experiments.runner import CellFailure, ResultTable

    with_failure = ResultTable(
        configs=table.configs + ["broken"],
        mixes=table.mixes,
        cells=dict(table.cells),
        failures={
            ("broken", "M3"): CellFailure(
                config="broken",
                mix="M3",
                error_type="CellTimeout",
                message="attempt 2 exceeded the 30s wall-clock budget",
                traceback="",
                attempts=2,
                elapsed=61.5,
            )
        },
    )
    path = tmp_path / "results.json"
    save_table(with_failure, path)
    loaded = load_table(path)
    failure = loaded.failure("broken", "M3")
    assert failure.error_type == "CellTimeout"
    assert failure.attempts == 2
    assert failure.elapsed == pytest.approx(61.5)
    assert not loaded.ok("broken", "M3")
    assert loaded.ok("small", "M3")
