"""Unit tests for report formatting."""

import pytest

from repro.experiments.report import format_comparison, format_table, speedup_suffix


def test_format_table_basic():
    text = format_table(
        "Demo", ["r1", "r2"], {"a": [1.0, 2.0], "b": [3.0, 4.5]}
    )
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "a" in lines[2] and "b" in lines[2]
    assert "1.000" in text and "4.500" in text
    assert text.index("r1") < text.index("r2")


def test_format_table_custom_format_and_note():
    text = format_table(
        "T", ["x"], {"v": [12.345]}, value_format="{:+.1f}", note="hello"
    )
    assert "+12.3" in text
    assert text.endswith("hello")


def test_format_table_length_mismatch():
    with pytest.raises(ValueError):
        format_table("T", ["a", "b"], {"v": [1.0]})


def test_format_comparison_includes_ratio():
    text = format_comparison("C", ["w"], paper=[2.0], measured=[3.0])
    assert "paper speedup" in text
    assert "measured/paper" in text
    assert "1.500" in text


def test_format_comparison_length_mismatch():
    with pytest.raises(ValueError):
        format_comparison("C", ["w"], [1.0], [1.0, 2.0])


def test_speedup_suffix():
    assert speedup_suffix(1.754) == "1.75x"
    assert speedup_suffix(2.0, "3D-fast") == "2.00x over 3D-fast"
