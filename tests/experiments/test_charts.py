"""Unit tests for text bar charts."""

import pytest

from repro.experiments.charts import bar, grouped_bars, speedup_chart


def test_bar_scales():
    assert bar(10, 10, width=10) == "#" * 10
    assert bar(5, 10, width=10) == "#" * 5
    assert bar(0, 10, width=10) == ""


def test_bar_clamps_and_validates():
    assert bar(20, 10, width=10) == "#" * 10  # clamped at full width
    assert bar(-5, 10, width=10) == ""
    with pytest.raises(ValueError):
        bar(1, 0)
    with pytest.raises(ValueError):
        bar(1, 1, width=0)


def test_grouped_bars_structure():
    text = grouped_bars(
        "Demo",
        ["H1", "VH2"],
        {"3D": [1.5, 1.9], "3D-fast": [2.4, 3.6]},
    )
    assert text.startswith("Demo\n====")
    assert text.count("H1:") == 1
    assert text.count("VH2:") == 1
    assert text.count("3D ") >= 1
    # Larger value -> longer bar.
    lines = text.splitlines()
    h1_3d = next(l for l in lines if "3D " in l and "1.50" in l)
    vh2_fast = next(l for l in lines if "3.60" in l)
    assert vh2_fast.count("#") > h1_3d.count("#")


def test_grouped_bars_validates_lengths():
    with pytest.raises(ValueError):
        grouped_bars("T", ["a", "b"], {"s": [1.0]})


def test_grouped_bars_needs_positive_peak():
    with pytest.raises(ValueError):
        grouped_bars("T", ["a"], {"s": [0.0]})


def test_speedup_chart_marks_baseline():
    # The 1.0 marker shows through where a bar falls short of baseline.
    text = speedup_chart("S", ["w"], {"slow": [0.5], "fast": [2.0]})
    slow_line = next(l for l in text.splitlines() if "0.50" in l)
    assert "|" in slow_line
    fast_line = next(l for l in text.splitlines() if "2.00" in l)
    assert "|" not in fast_line  # bar covers the marker position
