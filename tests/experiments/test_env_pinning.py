"""Pin the public environment-variable names.

``REPRO_PARALLEL`` (and the benchmark knobs ``REPRO_SCALE`` /
``REPRO_MIXES``) are user-facing contract: they appear in the README and
generated API docs.  These tests fail if the literal names drift in any
of the places that consume or document them.
"""

from pathlib import Path

import pytest

from repro.experiments.runner import parallelism_from_env

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repro_parallel_is_read_by_that_exact_name(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "3")
    assert parallelism_from_env() == 3


def test_repro_parallel_defaults_to_serial(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    assert parallelism_from_env() == 1


def test_repro_parallel_auto_uses_cpu_count(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "auto")
    assert parallelism_from_env() >= 1


@pytest.mark.parametrize("bad", ["0", "-2", "many"])
def test_repro_parallel_rejects_bad_values(monkeypatch, bad):
    monkeypatch.setenv("REPRO_PARALLEL", bad)
    with pytest.raises(ValueError, match="REPRO_PARALLEL"):
        parallelism_from_env()


@pytest.mark.parametrize(
    "relpath",
    ["README.md", "docs/api.md", "benchmarks/conftest.py"],
)
def test_literal_name_documented(relpath):
    text = (REPO_ROOT / relpath).read_text(encoding="utf-8")
    assert "REPRO_PARALLEL" in text, f"{relpath} lost the REPRO_PARALLEL name"


def test_benchmark_knob_names_documented_in_conftest():
    text = (REPO_ROOT / "benchmarks" / "conftest.py").read_text(encoding="utf-8")
    for name in ("REPRO_SCALE", "REPRO_MIXES"):
        assert name in text
