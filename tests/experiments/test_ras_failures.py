"""Simulated uncorrectable errors surface as structured cell failures.

The bridge between the two resilience layers: a RAS ``"fatal"``
machine-check raises ``UncorrectableMemoryError`` inside the simulated
machine, and the experiment runner records it as a ``CellFailure`` that
journals and resumes like any harness-level crash.
"""

import json

import pytest

import repro.experiments.runner as runner_module
from repro.common.units import MIB
from repro.experiments.persistence import CellJournal, load_table, save_table
from repro.experiments.runner import RunPolicy, run_matrix
from repro.ras import RasConfig
from repro.system.config import config_3d_fast
from repro.system.scale import ExperimentScale
from repro.workloads.mixes import MIXES

TINY = ExperimentScale("tiny", 300, 1000)

#: Aggressive enough that a bank dies and its poison is consumed well
#: inside the tiny instruction budget, deterministically.
_FATAL_RAS = RasConfig(
    ecc="secded",
    hard_fail_rate=0.5,
    hard_fail_horizon=5,
    bank_retire_threshold=1000,  # no retirement rescue before the MCE
    machine_check_policy="fatal",
)


def _small(name, **overrides):
    return config_3d_fast().derive(
        name=name,
        l2_size=1 * MIB,
        l2_assoc=16,
        dram_capacity=64 * MIB,
        **overrides,
    )


@pytest.fixture()
def matrix():
    configs = [_small("healthy"), _small("dying", ras=_FATAL_RAS)]
    return configs, [MIXES["H1"]]


def test_fatal_mce_recorded_as_structured_cell_failure(matrix):
    configs, mixes = matrix
    table = run_matrix(configs, mixes, TINY, workers=1)
    # The healthy config completed; the dying one degraded to a record.
    assert table.ok("healthy", "H1")
    assert not table.ok("dying", "H1")
    failure = table.failure("dying", "H1")
    assert failure.error_type == "UncorrectableMemoryError"
    assert "uncorrectable" in failure.message
    assert failure.attempts == 1
    assert "UncorrectableMemoryError" in failure.traceback


def test_mce_failure_survives_journal_and_resume(tmp_path, matrix, monkeypatch):
    configs, mixes = matrix
    journal = tmp_path / "ras.journal.jsonl"
    first = run_matrix(
        configs, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal),
    )
    assert first.failure("dying", "H1") is not None

    # The journal carries the failure as a structured record.
    records = [json.loads(line) for line in journal.read_text().splitlines()]
    kinds = [r["kind"] for r in records]
    assert "failure" in kinds
    completed, failures = CellJournal.load(journal)
    assert ("healthy", "H1") in completed
    assert any(
        f.error_type == "UncorrectableMemoryError" for f in failures.values()
    )

    # Resume re-simulates only the failed cell; the fault universe is
    # deterministic, so it fails identically.
    calls = []
    original = runner_module.run_workload

    def counting(config, benchmarks, **kwargs):
        calls.append(config.name)
        return original(config, benchmarks, **kwargs)

    monkeypatch.setattr(runner_module, "run_workload", counting)
    second = run_matrix(
        configs, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal, resume=True),
    )
    assert calls == ["dying"]
    failure = second.failure("dying", "H1")
    assert failure.error_type == "UncorrectableMemoryError"
    assert failure.message == first.failure("dying", "H1").message


def test_mce_failure_survives_table_persistence(tmp_path, matrix):
    configs, mixes = matrix
    table = run_matrix(configs, mixes, TINY, workers=1)
    path = tmp_path / "table.json"
    save_table(table, path)
    loaded = load_table(path)
    failure = loaded.failure("dying", "H1")
    assert failure is not None
    assert failure.error_type == "UncorrectableMemoryError"
    assert loaded.ok("healthy", "H1")
