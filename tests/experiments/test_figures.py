"""Mechanics tests for the figure/table runners (tiny scale, few mixes).

These verify structure, formatting and bookkeeping; the *shape*
assertions against the paper live in tests/integration/.
"""

import pytest

from repro.experiments.figure4 import run_figure4
from repro.experiments.figure6 import run_figure6a, run_figure6b
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure9 import run_figure9
from repro.experiments.table2 import run_table2a, run_table2b
from repro.system.scale import ExperimentScale
from repro.workloads.mixes import MIXES

TINY = ExperimentScale("tiny", 300, 1200)
ONE_MIX = [MIXES["H3"]]


def test_figure4_structure_and_format():
    result = run_figure4(scale=TINY, mixes=ONE_MIX, workers=1)
    assert result.speedup("2D", "H3") == pytest.approx(1.0)
    for config in ("3D", "3D-wide", "3D-fast"):
        assert result.speedup(config, "H3") > 0
    text = result.format()
    assert "Figure 4" in text
    assert "H3" in text and "3D-fast" in text and "GM(all)" in text


def test_figure6a_structure():
    result = run_figure6a(scale=TINY, mixes=ONE_MIX, workers=1)
    assert result.gm("1MC-8R") == pytest.approx(1.0)
    text = result.format()
    assert "4MC-16R" in text and "+1M-L2" in text and "paper" in text


def test_figure6b_structure():
    result = run_figure6b(scale=TINY, mixes=ONE_MIX, workers=1)
    for family in ("2MC-8R", "4MC-16R"):
        for entries in range(1, 5):
            assert result.gm(f"{family}-{entries}RB") > 0
    assert "row-buffer" in result.format()


@pytest.mark.parametrize("panel", ["dual-mc", "quad-mc"])
def test_figure7_structure(panel):
    result = run_figure7(panel=panel, scale=TINY, mixes=ONE_MIX, workers=1)
    assert result.improvement("2xMSHR", "H3") == pytest.approx(
        (result.table.speedup("2xMSHR", "H3", "1x") - 1) * 100
    )
    text = result.format()
    assert "Dynamic" in text and "8xMSHR" in text


def test_figure7_rejects_unknown_panel():
    with pytest.raises(ValueError):
        run_figure7(panel="octo-mc", scale=TINY, mixes=ONE_MIX)


def test_figure9_structure():
    result = run_figure9(panel="quad-mc", scale=TINY, mixes=ONE_MIX, workers=1)
    for variant in ("8xMSHR", "VBF", "Dynamic", "V+D"):
        assert isinstance(result.improvement(variant, "H3"), float)
    probes = result.vbf_probes_per_access("VBF")
    assert probes >= 1.0
    text = result.format()
    assert "V+D" in text and "probes/access" in text


def test_figure9_rejects_unknown_panel():
    with pytest.raises(ValueError):
        run_figure9(panel="none", scale=TINY, mixes=ONE_MIX)


def test_table2a_measures_requested_benchmarks():
    result = run_table2a(scale=TINY, benchmarks=["S.copy", "namd"])
    assert set(result.mpki) == {"S.copy", "namd"}
    # Stream misses far more than namd even at tiny scale.
    assert result.mpki["S.copy"] > result.mpki["namd"]
    text = result.format()
    assert "Table 2(a)" in text and "paper" in text


def test_table2b_structure():
    result = run_table2b(scale=TINY, mixes=[MIXES["M3"]], workers=1)
    assert result.hmipc["M3"] > 0
    assert "Table 2(b)" in result.format()


def test_figure4_chart_rendering():
    result = run_figure4(scale=TINY, mixes=ONE_MIX, workers=1)
    chart = result.chart(width=30)
    assert "Figure 4" in chart
    assert "3D-fast" in chart
    assert "#" in chart


def test_stack_study_structure():
    from repro.experiments.stack_study import run_stack_study

    result = run_stack_study(scale=TINY, mixes=ONE_MIX, workers=1)
    assert result.gm("2D") == pytest.approx(1.0)
    for name in ("2D+L3", "3D", "3D-fast", "quad-MC"):
        assert result.gm(name) > 0
    assert "cache vs memory" in result.format()


def test_remaining_figures_have_charts():
    r6a = run_figure6a(scale=TINY, mixes=ONE_MIX, workers=1)
    assert "Figure 6(a)" in r6a.chart(width=20)
    r6b = run_figure6b(scale=TINY, mixes=ONE_MIX, workers=1)
    assert "row-buffer entries" in r6b.chart(width=20)
    r7 = run_figure7(panel="dual-mc", scale=TINY, mixes=ONE_MIX, workers=1)
    assert "dual-mc" in r7.chart(width=20)
    r9 = run_figure9(panel="quad-mc", scale=TINY, mixes=ONE_MIX, workers=1)
    assert "quad-mc" in r9.chart(width=20)
