"""Fault injection, retry/backoff, timeouts, and graceful degradation.

These tests exercise the resilience layer itself: the fault-injection
hooks deterministically crash/hang/slow specific matrix cells, and the
assertions check that the runner isolates, retries, and records those
failures without losing the healthy cells.
"""

import pytest

from repro.common.errors import CellFailedError, InjectedFault
from repro.common.units import MIB
from repro.experiments import faults
from repro.experiments.faults import FaultSpec
from repro.experiments.runner import RunPolicy, parallelism_from_env, run_matrix
from repro.system.config import config_3d_fast
from repro.system.scale import ExperimentScale
from repro.workloads.mixes import MIXES

TINY = ExperimentScale("tiny", 300, 1000)

#: Fast backoff so retry tests don't sleep for real.
FAST = dict(backoff_base=0.01, backoff_max=0.05)


def _small(name, **overrides):
    return config_3d_fast().derive(
        name=name,
        l2_size=1 * MIB,
        l2_assoc=16,
        dram_capacity=64 * MIB,
        **overrides,
    )


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.clear()


@pytest.fixture()
def matrix():
    configs = [_small("base"), _small("narrow", memory_bus="tsv8")]
    mixes = [MIXES["M1"], MIXES["M3"]]
    return configs, mixes


# ----------------------------------------------------------------------
# Spec parsing and matching


def test_parse_fault_spec():
    spec = faults.parse_fault("crash:base:M1:2:5.5")
    assert spec == FaultSpec("crash", "base", "M1", times=2, seconds=5.5)


def test_parse_defaults_and_roundtrip():
    spec = faults.parse_fault("raise:cfg:mix")
    assert spec.times == 1
    specs = (spec, FaultSpec("hang", "*", "M3", times=-1, seconds=9.0))
    assert faults.parse_faults(faults.encode_faults(specs)) == specs


def test_parse_rejects_unknown_kind_and_short_specs():
    with pytest.raises(ValueError, match="unknown fault kind"):
        faults.parse_fault("explode:a:b")
    with pytest.raises(ValueError, match="kind:config:mix"):
        faults.parse_fault("raise:a")


def test_matching_wildcards_and_attempts():
    spec = FaultSpec("raise", "*", "M1", times=2)
    assert spec.matches("anything", "M1", 1)
    assert spec.matches("anything", "M1", 2)
    assert not spec.matches("anything", "M1", 3)  # first retry succeeds
    assert not spec.matches("anything", "M3", 1)
    always = FaultSpec("raise", "cfg", "*", times=-1)
    assert always.matches("cfg", "M9", 999)


def test_inject_raises_only_for_matching_cell():
    faults.install(FaultSpec("raise", "base", "M1"))
    faults.inject("base", "M3", 1)  # no-op
    with pytest.raises(InjectedFault):
        faults.inject("base", "M1", 1)


# ----------------------------------------------------------------------
# parallelism_from_env (satellite)


def test_parallelism_default_is_serial(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    assert parallelism_from_env() == 1


def test_parallelism_auto_uses_cpu_count(monkeypatch):
    import os

    monkeypatch.setenv("REPRO_PARALLEL", "auto")
    assert parallelism_from_env() == (os.cpu_count() or 1)


def test_parallelism_rejects_non_integer_cleanly(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "lots")
    with pytest.raises(ValueError, match="positive integer") as excinfo:
        parallelism_from_env()
    # `raise ... from None`: no confusing chained int() traceback.
    assert excinfo.value.__suppress_context__


@pytest.mark.parametrize("value", ["0", "-4"])
def test_parallelism_rejects_non_positive(monkeypatch, value):
    monkeypatch.setenv("REPRO_PARALLEL", value)
    with pytest.raises(ValueError, match=">= 1"):
        parallelism_from_env()


# ----------------------------------------------------------------------
# Graceful degradation (serial path)


def test_failed_cell_is_recorded_not_raised(matrix):
    configs, mixes = matrix
    faults.install(FaultSpec("raise", "narrow", "M1", times=-1))
    table = run_matrix(configs, mixes, TINY, workers=1)
    assert sorted(table.cells) == [
        ("base", "M1"), ("base", "M3"), ("narrow", "M3"),
    ]
    failure = table.failure("narrow", "M1")
    assert failure.error_type == "InjectedFault"
    assert failure.attempts == 1
    assert "narrow" in failure.message and failure.traceback


def test_strict_and_lenient_accessors(matrix):
    configs, mixes = matrix
    faults.install(FaultSpec("raise", "narrow", "M1", times=-1))
    table = run_matrix(configs, mixes, TINY, workers=1)
    assert table.ok("base", "M1") and not table.ok("narrow", "M1")
    assert table.result_or_none("narrow", "M1") is None
    with pytest.raises(CellFailedError, match="InjectedFault"):
        table.result("narrow", "M1")
    with pytest.raises(CellFailedError):
        table.hmipc("narrow", "M1")
    with pytest.raises(CellFailedError):
        table.gm_speedup("narrow", "base")  # strict default
    # Lenient GM skips the failed mix and uses the surviving one.
    gm = table.gm_speedup("narrow", "base", skip_failed=True)
    assert gm == pytest.approx(table.speedup("narrow", "M3", "base"))


def test_unknown_cell_still_raises_keyerror(matrix):
    configs, mixes = matrix
    table = run_matrix(configs, [MIXES["M3"]], TINY, workers=1)
    with pytest.raises(KeyError):
        table.result("base", "nope")


def test_retry_recovers_transient_failure(matrix):
    configs, mixes = matrix
    faults.install(FaultSpec("raise", "base", "M3", times=1))
    table = run_matrix(
        configs, mixes, TINY, workers=1, policy=RunPolicy(retries=1, **FAST)
    )
    assert not table.failures
    assert table.ok("base", "M3")


def test_retries_exhausted_counts_attempts(matrix):
    configs, mixes = matrix
    faults.install(FaultSpec("raise", "base", "M3", times=-1))
    table = run_matrix(
        configs, mixes, TINY, workers=1, policy=RunPolicy(retries=2, **FAST)
    )
    assert table.failure("base", "M3").attempts == 3


# ----------------------------------------------------------------------
# Process isolation: crashes, hangs, timeouts (acceptance scenario)


def test_crash_and_hang_cells_degrade_gracefully(matrix):
    """A crashed worker and a hung worker must not take down the matrix."""
    configs, mixes = matrix
    faults.install(
        FaultSpec("crash", "base", "M1", times=-1),
        FaultSpec("hang", "narrow", "M3", times=-1, seconds=120.0),
    )
    table = run_matrix(
        configs,
        mixes,
        TINY,
        workers=2,
        policy=RunPolicy(cell_timeout=3.0, retries=1, **FAST),
    )
    # Healthy cells all completed.
    assert table.ok("base", "M3") and table.ok("narrow", "M1")
    crash = table.failure("base", "M1")
    assert crash.error_type == "WorkerCrash"
    assert str(faults.CRASH_EXITCODE) in crash.message
    assert crash.attempts == 2
    hang = table.failure("narrow", "M3")
    assert hang.error_type == "CellTimeout"
    assert hang.attempts == 2
    assert hang.elapsed >= 2 * 3.0 * 0.9  # two timed-out attempts


def test_hang_timeout_then_retry_succeeds(matrix):
    configs, _ = matrix
    # Hangs only on attempt 1; the retry (fresh process) completes.
    faults.install(FaultSpec("hang", "base", "M3", times=1, seconds=120.0))
    table = run_matrix(
        configs,
        [MIXES["M3"]],
        TINY,
        workers=2,
        policy=RunPolicy(cell_timeout=3.0, retries=1, **FAST),
    )
    assert not table.failures
    assert table.ok("base", "M3")


def test_env_var_reaches_worker_processes(matrix, monkeypatch):
    configs, mixes = matrix
    monkeypatch.setenv(faults.ENV_VAR, "raise:narrow:M3:-1")
    table = run_matrix(
        configs, mixes, TINY, workers=2, policy=RunPolicy(retries=0)
    )
    assert table.failure("narrow", "M3").error_type == "InjectedFault"
    assert len(table.cells) == 3


def test_slow_fault_just_delays(matrix):
    configs, _ = matrix
    faults.install(FaultSpec("slow", "base", "M3", times=-1, seconds=0.2))
    table = run_matrix(configs, [MIXES["M3"]], TINY, workers=1)
    assert not table.failures


def test_policy_validation():
    with pytest.raises(ValueError, match="retries"):
        RunPolicy(retries=-1)
    with pytest.raises(ValueError, match="cell_timeout"):
        RunPolicy(cell_timeout=0)
    with pytest.raises(ValueError, match="journal_path"):
        run_matrix(
            [_small("base")],
            [MIXES["M3"]],
            TINY,
            workers=1,
            policy=RunPolicy(resume=True),
        )
