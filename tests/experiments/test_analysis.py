"""Unit tests for bottleneck analysis."""

import pytest

from repro.common.units import MIB
from repro.experiments.analysis import BottleneckReport, analyze, compare_reports
from repro.system.config import config_2d, config_3d_fast
from repro.system.machine import Machine


def _run(config, benchmarks):
    machine = Machine(config, benchmarks)
    machine.run(warmup_instructions=1_000, measure_instructions=3_000)
    return machine


def _shrunk(config):
    return config.derive(l2_size=1 * MIB, l2_assoc=16, dram_capacity=64 * MIB)


@pytest.fixture(scope="module")
def stream_2d():
    return analyze(_run(_shrunk(config_2d()), ["S.copy"] * 4))


@pytest.fixture(scope="module")
def light_3d():
    return analyze(
        _run(_shrunk(config_3d_fast()), ["gzip", "namd", "mesa", "astar"])
    )


def test_report_fields_populated(stream_2d):
    assert stream_2d.total_cycles > 0
    assert 0 <= stream_2d.bus_busy_fraction <= 1
    assert 0 <= stream_2d.dram_row_hit_rate <= 1
    assert stream_2d.l2_miss_rate > 0.3  # streams miss heavily


def test_streams_on_2d_are_memory_bound(stream_2d):
    assert stream_2d.dominant() in (
        "memory-bus", "memory-queueing", "l2-mshr", "memory-latency",
    )
    assert stream_2d.bus_busy_fraction > 0.3


def test_light_mix_on_fast_memory_is_not_bus_bound(light_3d, stream_2d):
    # Note: the L2 *miss rate* of a light mix can be high (the L1
    # filters out all the hits), so channel pressure is the right
    # discriminator here, not miss rate.
    assert light_3d.bus_busy_fraction < stream_2d.bus_busy_fraction / 2


def test_analyze_requires_a_run():
    machine = Machine(_shrunk(config_2d()), ["gzip"] * 4)
    with pytest.raises(ValueError):
        analyze(machine)


def test_format_and_compare(stream_2d, light_3d):
    text = stream_2d.format()
    assert "dominant pressure" in text
    assert "row-buffer hit rate" in text
    side_by_side = compare_reports(
        [("2D streams", stream_2d), ("3D light", light_3d)]
    )
    assert "2D streams" in side_by_side and "3D light" in side_by_side


def test_dominant_verdicts_cover_branches():
    base = dict(
        total_cycles=1000, rob_stalls=0, l1_mshr_stalls=0,
        tlb_walk_cycles=0, l2_mshr_stalls=0, l2_mshr_stall_cycles=0,
        l2_miss_rate=0.5, mshr_avg_probes=1.0, mrq_wait_cycles=0,
        bus_busy_fraction=0.1, bus_queue_cycles=0, dram_row_hit_rate=0.5,
    )
    assert BottleneckReport(**{**base, "l2_mshr_stall_cycles": 900}).dominant() == "l2-mshr"
    assert BottleneckReport(**{**base, "bus_busy_fraction": 0.9}).dominant() == "memory-bus"
    assert BottleneckReport(**{**base, "bus_queue_cycles": 900}).dominant() == "memory-queueing"
    assert BottleneckReport(**{**base, "l2_miss_rate": 0.01}).dominant() == "compute"
    assert BottleneckReport(**base).dominant() == "memory-latency"
