"""Checkpoint/resume: the cell journal and run_matrix(resume=True).

The acceptance scenario: a sweep is interrupted (or some cells fail),
and a second invocation with ``resume=True`` re-simulates *only* the
missing/failed cells — verified by counting ``run_workload`` calls.
"""

import json

import pytest

import repro.experiments.runner as runner_module
from repro.common.units import MIB
from repro.experiments import faults
from repro.experiments.faults import FaultSpec
from repro.experiments.persistence import CellJournal, journal_signature
from repro.experiments.runner import RunPolicy, run_matrix
from repro.system.config import config_3d_fast
from repro.system.scale import ExperimentScale
from repro.workloads.mixes import MIXES

TINY = ExperimentScale("tiny", 300, 1000)
FAST = dict(backoff_base=0.01, backoff_max=0.05)


def _small(name, **overrides):
    return config_3d_fast().derive(
        name=name,
        l2_size=1 * MIB,
        l2_assoc=16,
        dram_capacity=64 * MIB,
        **overrides,
    )


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.clear()


@pytest.fixture()
def matrix():
    configs = [_small("base"), _small("narrow", memory_bus="tsv8")]
    mixes = [MIXES["M1"], MIXES["M3"]]
    return configs, mixes


@pytest.fixture()
def counted_runs(monkeypatch):
    """Count run_workload invocations made by the (serial) runner."""
    calls = []
    original = runner_module.run_workload

    def counting(config, benchmarks, **kwargs):
        calls.append((config.name, kwargs.get("workload_name")))
        return original(config, benchmarks, **kwargs)

    monkeypatch.setattr(runner_module, "run_workload", counting)
    return calls


def test_resume_skips_completed_cells(tmp_path, matrix, counted_runs):
    configs, mixes = matrix
    journal = tmp_path / "matrix.journal.jsonl"
    faults.install(FaultSpec("raise", "base", "M1", times=-1))
    first = run_matrix(
        configs, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal),
    )
    assert len(first.cells) == 3
    assert first.failure("base", "M1") is not None
    assert len(counted_runs) == 3  # the faulted cell never reached a sim

    faults.clear()  # "transient outage over"
    counted_runs.clear()
    second = run_matrix(
        configs, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal, resume=True),
    )
    # Only the previously failed cell was re-simulated.
    assert counted_runs == [("base", "M1")]
    assert len(second.cells) == 4
    assert not second.failures


def test_resumed_results_match_fresh_results(tmp_path, matrix):
    configs, mixes = matrix
    journal = tmp_path / "matrix.journal.jsonl"
    fresh = run_matrix(configs, mixes, TINY, workers=1)
    run_matrix(
        configs, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal),
    )
    resumed = run_matrix(
        configs, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal, resume=True),
    )
    for key, result in fresh.cells.items():
        assert resumed.cells[key].hmipc == pytest.approx(result.hmipc)
        assert resumed.cells[key].total_cycles == result.total_cycles


def test_interrupted_matrix_resumes_where_it_left_off(
    tmp_path, matrix, counted_runs, monkeypatch
):
    """Kill a matrix mid-run; completed cells are not re-simulated."""
    configs, mixes = matrix
    journal = tmp_path / "matrix.journal.jsonl"

    original = runner_module.run_workload
    state = {"n": 0}

    def dying(config, benchmarks, **kwargs):
        state["n"] += 1
        if state["n"] == 3:  # "Ctrl-C" after two finished cells
            raise KeyboardInterrupt
        return original(config, benchmarks, **kwargs)

    monkeypatch.setattr(runner_module, "run_workload", dying)
    with pytest.raises(KeyboardInterrupt):
        run_matrix(
            configs, mixes, TINY, workers=1,
            policy=RunPolicy(journal_path=journal),
        )

    monkeypatch.setattr(runner_module, "run_workload", original)
    completed, _ = CellJournal.load(journal)
    assert len(completed) == 2

    counted_runs.clear()
    table = run_matrix(
        configs, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal, resume=True),
    )
    assert len(table.cells) == 4
    assert len(counted_runs) == 2  # only the two missing cells


def test_resume_works_across_process_isolation(tmp_path, matrix):
    """Journal written by the process-isolated path resumes serially."""
    configs, mixes = matrix
    journal = tmp_path / "matrix.journal.jsonl"
    faults.install(FaultSpec("crash", "narrow", "M1", times=-1))
    first = run_matrix(
        configs, mixes, TINY, workers=2,
        policy=RunPolicy(journal_path=journal, **FAST),
    )
    assert first.failure("narrow", "M1").error_type == "WorkerCrash"
    faults.clear()
    second = run_matrix(
        configs, mixes, TINY, workers=2,
        policy=RunPolicy(journal_path=journal, resume=True),
    )
    assert len(second.cells) == 4 and not second.failures


def test_resume_rejects_mismatched_signature(tmp_path, matrix):
    configs, mixes = matrix
    journal = tmp_path / "matrix.journal.jsonl"
    run_matrix(
        configs, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal),
    )
    with pytest.raises(ValueError, match="different run"):
        run_matrix(
            configs, mixes, TINY, seed=7, workers=1,
            policy=RunPolicy(journal_path=journal, resume=True),
        )


def test_resume_refuses_edited_config_contents(tmp_path, matrix, counted_runs):
    """Same config *names*, different contents: structured refusal."""
    from repro.common.errors import JournalConfigMismatch

    configs, mixes = matrix
    journal = tmp_path / "matrix.journal.jsonl"
    run_matrix(
        configs, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal),
    )
    edited = [configs[0].derive(l2_assoc=8), configs[1]]
    with pytest.raises(JournalConfigMismatch) as excinfo:
        run_matrix(
            edited, mixes, TINY, workers=1,
            policy=RunPolicy(journal_path=journal, resume=True),
        )
    assert excinfo.value.found != excinfo.value.expected

    # --force-resume mixes the old cells in anyway (caller's risk).
    counted_runs.clear()
    table = run_matrix(
        edited, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal, resume=True,
                         force_resume=True),
    )
    assert counted_runs == [] and len(table.cells) == 4


def test_resume_accepts_unchanged_config_contents(tmp_path, matrix):
    """The fingerprint is deterministic: an identical matrix resumes."""
    configs, mixes = matrix
    journal = tmp_path / "matrix.journal.jsonl"
    run_matrix(
        configs, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal),
    )
    rebuilt = [_small("base"), _small("narrow", memory_bus="tsv8")]
    table = run_matrix(
        rebuilt, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal, resume=True),
    )
    assert len(table.cells) == 4 and not table.failures


def test_legacy_journal_without_fingerprint_needs_force(tmp_path, matrix):
    """A pre-fingerprint journal has unverifiable contents: same
    structured refusal, same --force-resume escape."""
    from repro.common.errors import JournalConfigMismatch

    configs, mixes = matrix
    journal = tmp_path / "matrix.journal.jsonl"
    run_matrix(
        configs, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal),
    )
    # Strip the fingerprint from the recorded header (legacy journal).
    lines = journal.read_text().splitlines()
    header = json.loads(lines[0])
    del header["signature"]["config_fingerprint"]
    lines[0] = json.dumps(header, sort_keys=True)
    journal.write_text("\n".join(lines) + "\n")

    with pytest.raises(JournalConfigMismatch):
        run_matrix(
            configs, mixes, TINY, workers=1,
            policy=RunPolicy(journal_path=journal, resume=True),
        )
    table = run_matrix(
        configs, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal, resume=True,
                         force_resume=True),
    )
    assert len(table.cells) == 4


def test_journal_tolerates_torn_final_line(tmp_path, matrix, counted_runs):
    configs, mixes = matrix
    journal = tmp_path / "matrix.journal.jsonl"
    run_matrix(
        configs, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal),
    )
    # Simulate a kill -9 mid-append: a truncated trailing record.
    intact = journal.read_text()
    last = intact.splitlines()[-1]
    journal.write_text(intact + last[: len(last) // 2])
    completed, _ = CellJournal.load(journal)
    assert len(completed) == 4  # everything before the torn line survives

    counted_runs.clear()
    table = run_matrix(
        configs, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal, resume=True),
    )
    assert counted_runs == [] and len(table.cells) == 4


def test_resume_truncates_torn_tail_at_every_offset(tmp_path):
    """Byte-truncate a journal anywhere inside its final record: resume
    must (a) keep every record before the tear, (b) physically truncate
    the torn tail, and (c) leave the journal appendable — the next
    record must not glue onto torn bytes and corrupt the file."""
    from repro.experiments.persistence import scan_jsonl
    from repro.system.machine import CoreResult, MachineResult

    def result(mix):
        return MachineResult(
            config_name="base",
            workload=mix,
            cores=[CoreResult("mcf", 0.5, 1000.0, 2000.0, 12.0)],
            total_cycles=2000,
            l2_stats={"demand_accesses": 10.0},
            dram_row_hit_rate=0.5,
            mshr_avg_probes=1.0,
        )

    signature = journal_signature(["base"], ["M1", "M2"], TINY, 42)
    master = tmp_path / "master.jsonl"
    with CellJournal.open(master, signature) as journal:
        journal.record_result("base", "M1", result("M1"))
        journal.record_result("base", "M2", result("M2"))
    intact = master.read_bytes()
    last_start = intact.rstrip(b"\n").rfind(b"\n") + 1

    for cut in range(last_start, len(intact)):
        torn = tmp_path / "torn.jsonl"
        torn.write_bytes(intact[:cut])
        # The trailing newline is the durability marker: every cut
        # inside the last record (even one keeping all of its JSON but
        # not the "\n") loses exactly that record and nothing else.
        completed, _ = CellJournal.load(torn)
        assert len(completed) == 1, f"cut at byte {cut}"

        with CellJournal.open(torn, signature, resume=True) as journal:
            journal.record_result("base", "M2", result("M2"))
        records, valid_bytes = scan_jsonl(torn)
        assert valid_bytes == torn.stat().st_size, f"cut at byte {cut}"
        assert len(records) == 3, f"cut at byte {cut}"  # header + M1 + M2
        completed, _ = CellJournal.load(torn)
        assert len(completed) == 2, f"cut at byte {cut}"


def test_journal_without_resume_restarts(tmp_path, matrix, counted_runs):
    configs, mixes = matrix
    journal = tmp_path / "matrix.journal.jsonl"
    run_matrix(
        configs, [MIXES["M1"]], TINY, workers=1,
        policy=RunPolicy(journal_path=journal),
    )
    counted_runs.clear()
    run_matrix(
        configs, [MIXES["M1"]], TINY, workers=1,
        policy=RunPolicy(journal_path=journal),  # no resume: fresh start
    )
    assert len(counted_runs) == 2


def test_journal_rejects_non_journal_file(tmp_path, matrix):
    configs, mixes = matrix
    path = tmp_path / "bogus.jsonl"
    path.write_text(json.dumps({"kind": "result"}) + "\n")
    with pytest.raises(ValueError, match="not a cell journal"):
        run_matrix(
            configs, mixes, TINY, workers=1,
            policy=RunPolicy(journal_path=path, resume=True),
        )


def test_journal_records_attempts_and_failures(tmp_path, matrix):
    configs, mixes = matrix
    journal = tmp_path / "matrix.journal.jsonl"
    faults.install(FaultSpec("raise", "base", "M3", times=1))
    run_matrix(
        configs, mixes, TINY, workers=1,
        policy=RunPolicy(journal_path=journal, retries=1, **FAST),
    )
    records = [json.loads(line) for line in journal.read_text().splitlines()]
    assert records[0]["kind"] == "header"
    assert records[0]["signature"] == journal_signature(
        configs, ["M1", "M3"], TINY, 42
    )
    assert "config_fingerprint" in records[0]["signature"]
    by_cell = {
        (r["config"], r["mix"]): r for r in records if r["kind"] == "result"
    }
    assert by_cell[("base", "M3")]["attempts"] == 2  # recovered on retry
