"""Unit tests for fairness metrics and the batch scheduler."""

import pytest

from repro.common.units import MIB
from repro.experiments.fairness import FairnessResult, fairness_study
from repro.system.config import config_3d_fast
from repro.system.scale import ExperimentScale
from repro.workloads.mixes import MIXES

TINY = ExperimentScale("tiny", 400, 1500)


def test_metric_math_on_synthetic_numbers():
    result = FairnessResult(
        config_name="x",
        mix_name="y",
        benchmarks=["a", "b"],
        solo_ipc={"a": 2.0, "b": 1.0},
        mixed_ipc=[1.0, 0.5],
    )
    assert result.slowdowns == [2.0, 2.0]
    assert result.weighted_speedup == pytest.approx(1.0)
    assert result.harmonic_speedup == pytest.approx(0.5)
    assert result.max_slowdown == 2.0
    assert result.unfairness == pytest.approx(1.0)


def test_unfairness_detects_skew():
    result = FairnessResult(
        "x", "y", ["a", "b"],
        solo_ipc={"a": 1.0, "b": 1.0},
        mixed_ipc=[0.9, 0.3],
    )
    assert result.unfairness == pytest.approx((1 / 0.3) / (1 / 0.9))
    assert result.max_slowdown == pytest.approx(1 / 0.3)


def test_zero_mixed_ipc_is_infinite_slowdown():
    result = FairnessResult(
        "x", "y", ["a"], solo_ipc={"a": 1.0}, mixed_ipc=[0.0]
    )
    assert result.max_slowdown == float("inf")


@pytest.fixture(scope="module")
def study():
    config = config_3d_fast().derive(
        l2_size=1 * MIB, l2_assoc=16, dram_capacity=64 * MIB
    )
    return fairness_study(config, MIXES["M3"], scale=TINY)


def test_study_end_to_end(study):
    assert set(study.solo_ipc) == set(study.benchmarks)
    assert len(study.mixed_ipc) == 4
    # Sharing a machine can only slow programs down (or leave them flat).
    assert all(s >= 0.8 for s in study.slowdowns)
    assert 0 < study.weighted_speedup <= 4.3
    text = study.format()
    assert "weighted speedup" in text and "slowdown" in text


def test_duplicate_benchmarks_run_solo_once():
    config = config_3d_fast().derive(
        l2_size=1 * MIB, l2_assoc=16, dram_capacity=64 * MIB
    )
    result = fairness_study(config, MIXES["VH1"], scale=TINY)  # S.all x 4
    assert list(result.solo_ipc) == ["S.all"]
    assert len(result.mixed_ipc) == 4


def test_batch_scheduler_bounds_streaming_starvation():
    """Within one batch, an old random request cannot wait behind an
    unbounded run of newer row hits."""
    from repro.common.request import AccessType, MemoryRequest
    from repro.dram.device import DramDevice
    from repro.dram.timing import ddr2_commodity
    from repro.memctrl.mapping import AddressMapping
    from repro.memctrl.queue import MrqEntry
    from repro.memctrl.schedulers import BatchScheduler

    mapping = AddressMapping(num_mcs=1, ranks_per_mc=2, banks_per_rank=4)
    device = DramDevice(ddr2_commodity(), num_ranks=2, banks_per_rank=4)

    def entry(page, arrival):
        request = MemoryRequest(page * 4096, AccessType.READ)
        return MrqEntry(request, mapping.decompose(page * 4096), arrival)

    # Open the row that the "streaming" requests keep hitting.
    hot = entry(0, 0)
    device.access(hot.coords.rank, hot.coords.bank, hot.coords.row,
                  start=10**7, is_write=False)
    scheduler = BatchScheduler(max_batch=4)
    victim = entry(9, 1)  # old random request, different bank/row
    ready = [entry(0, 0), victim, entry(0, 2), entry(0, 3)]
    served = []
    now = 0
    # Keep injecting fresh row hits; the victim must still get served
    # within the first batch.
    for i in range(4):
        chosen = scheduler.select(ready, device, now + i)
        served.append(chosen)
        ready.remove(chosen)
        ready.append(entry(0, 100 + i))  # newer stream request
    assert victim in served


def test_batch_scheduler_validation_and_factory():
    from repro.memctrl.schedulers import BatchScheduler, make_scheduler

    with pytest.raises(ValueError):
        BatchScheduler(max_batch=0)
    assert isinstance(make_scheduler("batch"), BatchScheduler)
