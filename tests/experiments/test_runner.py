"""Unit tests for means, the result table, and the matrix runner."""

import pytest

from repro.common.units import MIB
from repro.experiments.runner import (
    ResultTable,
    geometric_mean,
    harmonic_mean,
    run_matrix,
)
from repro.system.config import config_3d_fast
from repro.system.scale import ExperimentScale
from repro.workloads.mixes import MIXES, WorkloadMix


def test_geometric_mean():
    assert geometric_mean([2, 8]) == pytest.approx(4.0)
    assert geometric_mean([5]) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


def test_harmonic_mean():
    assert harmonic_mean([1, 1]) == pytest.approx(1.0)
    assert harmonic_mean([2, 6]) == pytest.approx(3.0)
    with pytest.raises(ValueError):
        harmonic_mean([2, -1])


TINY = ExperimentScale("tiny", 300, 1000)


def _small(config, name):
    return config.derive(
        name=name, l2_size=1 * MIB, l2_assoc=16, dram_capacity=64 * MIB
    )


@pytest.fixture(scope="module")
def table():
    configs = [
        _small(config_3d_fast(), "base"),
        _small(config_3d_fast().derive(memory_bus="tsv8"), "narrow"),
    ]
    mixes = [MIXES["M1"], MIXES["M3"]]
    return run_matrix(configs, mixes, TINY, workers=1)


def test_matrix_shape(table):
    assert table.configs == ["base", "narrow"]
    assert table.mixes == ["M1", "M3"]
    assert len(table.cells) == 4


def test_cells_have_results(table):
    result = table.result("base", "M1")
    assert result.hmipc > 0
    assert result.config_name == "base"
    assert result.workload == "M1"


def test_speedup_self_is_one(table):
    assert table.speedup("base", "M1", "base") == pytest.approx(1.0)


def test_gm_speedup_filters_by_group(table):
    gm_all = table.gm_speedup("narrow", "base")
    gm_m = table.gm_speedup("narrow", "base", groups=("M",))
    assert gm_all == pytest.approx(gm_m)  # all our mixes are group M


def test_duplicate_config_names_rejected():
    config = _small(config_3d_fast(), "dup")
    with pytest.raises(ValueError):
        run_matrix([config, config], [MIXES["M1"]], TINY, workers=1)


def test_duplicate_mix_names_rejected():
    """Cells are keyed by (config, mix) name in the table, journal, and
    result cache — duplicated mix names must fail fast, not silently
    overwrite sibling cells."""
    config = _small(config_3d_fast(), "base")
    clone = WorkloadMix(
        "M1", "M", ("applu", "h264", "astar", "vortex"), 1.0
    )
    with pytest.raises(ValueError, match="duplicate mix names"):
        run_matrix([config], [MIXES["M1"], clone], TINY, workers=1)


def test_parallel_workers_match_serial():
    configs = [_small(config_3d_fast(), "base")]
    mixes = [MIXES["M3"]]
    serial = run_matrix(configs, mixes, TINY, workers=1)
    parallel = run_matrix(configs, mixes, TINY, workers=2)
    assert serial.hmipc("base", "M3") == pytest.approx(
        parallel.hmipc("base", "M3")
    )
