"""Cooperative preemption and resume-time guardrails."""

import os
import signal

import pytest

from repro.common.errors import SnapshotConfigMismatch, SnapshotPreempted
from repro.common.units import MIB
from repro.snapshot import SnapshotPlan, preemption
from repro.snapshot.format import read_snapshot_header
from repro.system.config import config_3d_fast
from repro.system.machine import Machine

MIX = ["gzip", "namd", "mesa", "astar"]


def _machine(seed=7):
    config = config_3d_fast().derive(
        l2_size=1 * MIB, l2_assoc=16, dram_capacity=64 * MIB
    )
    return Machine(config, MIX, seed=seed, workload_name="test")


@pytest.fixture(autouse=True)
def _clean_flag():
    preemption.clear()
    yield
    preemption.clear()


def test_sigusr1_sets_the_flag():
    old = signal.getsignal(preemption.PREEMPT_SIGNAL)
    preemption.install_handler()
    try:
        assert not preemption.preempt_requested()
        os.kill(os.getpid(), preemption.PREEMPT_SIGNAL)
        assert preemption.preempt_requested()
        preemption.clear()
        assert not preemption.preempt_requested()
    finally:
        signal.signal(preemption.PREEMPT_SIGNAL, old)


def test_preempted_run_writes_a_complete_snapshot(tmp_path):
    path = str(tmp_path / "cell.snap")
    preemption.request_preemption()
    with pytest.raises(SnapshotPreempted) as excinfo:
        _machine().run(
            500, 2000,
            snapshot=SnapshotPlan(path=path, every=1000, preemptible=True),
        )
    exc = excinfo.value
    assert exc.path == path
    assert exc.cycle is not None and exc.cycle > 0
    # The exception is raised only after the file is durably on disk.
    header = read_snapshot_header(path)
    assert header["meta"]["cycle"] == exc.cycle


def test_non_preemptible_plan_ignores_the_flag(tmp_path):
    path = str(tmp_path / "cell.snap")
    preemption.request_preemption()
    result = _machine().run(
        500, 2000, snapshot=SnapshotPlan(path=path, every=1000)
    )
    assert result.total_cycles > 0  # ran to completion despite the flag


def test_resume_refuses_a_different_machine(tmp_path):
    path = str(tmp_path / "cell.snap")
    preemption.request_preemption()
    with pytest.raises(SnapshotPreempted):
        _machine(seed=7).run(
            500, 2000,
            snapshot=SnapshotPlan(path=path, every=1000, preemptible=True),
        )
    preemption.clear()
    other = _machine(seed=8)  # different seed -> different fingerprint
    with pytest.raises(SnapshotConfigMismatch):
        other.resume(path)
    # force skips only the fingerprint check, never the checksum.
    header = other.resume(path, force=True)
    assert header["meta"]["cycle"] > 0


def test_oracle_plans_write_nothing(tmp_path):
    plan = SnapshotPlan(every=1000, write=False)
    _machine().run(500, 2000, snapshot=plan)
    assert list(tmp_path.iterdir()) == []


def test_plan_rejects_bad_cadence():
    with pytest.raises(ValueError):
        SnapshotPlan(every=0, write=False)
    with pytest.raises(ValueError):
        SnapshotPlan()  # writing plan without a path
