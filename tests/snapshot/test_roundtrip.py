"""Whole-machine state round-trips, in both directions.

Direction one: a preempted run resumed in a fresh machine must finish
with the exact result the uninterrupted run produces.  Direction two:
restoring a snapshot and immediately re-capturing must reproduce the
snapshot's own state tree — every component's seam is exercised, and a
field a component forgets to capture (or restores with a default) shows
up as a tree diff right here, not as a divergence ten thousand cycles
later.  Nothing below depends on hash ordering, so the suite passes
under ``PYTHONHASHSEED=random`` (CI runs it that way).
"""

import dataclasses

import pytest

from repro.common.errors import SnapshotPreempted
from repro.common.units import MIB
from repro.ras.config import RasConfig
from repro.sampling.plan import SamplingPlan
from repro.snapshot import SnapshotPlan, preemption
from repro.snapshot.format import read_snapshot_file
from repro.system.config import config_2d, config_3d_fast, config_l4_cache
from repro.system.machine import Machine

MIX = ["gzip", "namd", "mesa", "astar"]  # light, quick to simulate
WARMUP = 500
MEASURE = 2000
EVERY = 1000  # snapshot boundary cadence, well inside the run


def _small(config):
    return config.derive(l2_size=1 * MIB, l2_assoc=16, dram_capacity=64 * MIB)


def _shapes():
    fast = _small(config_3d_fast())
    return [
        ("plain", fast, {}),
        ("checkers", _small(config_2d()), {"checkers": "all"}),
        ("scalar", fast, {"batched": False}),
        (
            "fused-mc",
            fast.derive(name="3d-fast-mh", l2_size=64 * 1024, l2_assoc=8),
            {"fused_mc": True},
        ),
        ("l4-cache", _small(config_l4_cache(base=config_3d_fast())), {}),
        (
            "ras-on",
            fast.derive(
                name="3d-fast-ras",
                ras=RasConfig(
                    enabled=True, transient_rate=1e-4, retention_rate=1e-4
                ),
            ),
            {},
        ),
    ]


def _build(config, kwargs):
    return Machine(config, MIX, seed=7, workload_name="test", **kwargs)


def _preempt_to_file(config, kwargs, path):
    machine = _build(config, kwargs)
    preemption.clear()
    preemption.request_preemption()
    try:
        machine.run(
            WARMUP, MEASURE,
            snapshot=SnapshotPlan(path=path, every=EVERY, preemptible=True),
        )
    except SnapshotPreempted as exc:
        return exc
    finally:
        preemption.clear()
    raise AssertionError("run finished without hitting a snapshot boundary")


@pytest.mark.parametrize(
    "name,config,kwargs", _shapes(), ids=[s[0] for s in _shapes()]
)
def test_resumed_run_matches_uninterrupted(name, config, kwargs, tmp_path):
    path = str(tmp_path / "cell.snap")
    oracle = _build(config, kwargs).run(
        WARMUP, MEASURE, snapshot=SnapshotPlan(every=EVERY, write=False)
    )
    _preempt_to_file(config, kwargs, path)
    resumed_machine = _build(config, kwargs)
    resumed_machine.resume(path)
    resumed = resumed_machine.run(
        WARMUP, MEASURE, snapshot=SnapshotPlan(every=EVERY, write=False)
    )
    assert dataclasses.asdict(resumed) == dataclasses.asdict(oracle)


@pytest.mark.parametrize(
    "name,config,kwargs", _shapes(), ids=[s[0] for s in _shapes()]
)
def test_restore_then_recapture_reproduces_the_tree(
    name, config, kwargs, tmp_path
):
    """capture -> restore -> capture is the identity on state trees."""
    path = str(tmp_path / "cell.snap")
    exc = _preempt_to_file(config, kwargs, path)
    header, tree = read_snapshot_file(str(path))
    assert header["meta"]["cycle"] == exc.cycle

    machine = _build(config, kwargs)
    machine.resume(path)
    machine._apply_restore()
    assert machine.engine.now == exc.cycle
    recaptured = machine.capture_state()
    assert recaptured == tree


def test_tree_covers_every_wired_component(tmp_path):
    """Each component the machine registers appears in the state tree."""
    config = _small(config_l4_cache(base=config_3d_fast()))
    path = str(tmp_path / "cell.snap")
    _preempt_to_file(config, {}, path)
    _, tree = read_snapshot_file(path)
    machine = _build(config, {})
    assert len(tree["cores"]) == len(machine.cores)
    assert len(tree["l1s"]) == len(machine.l1s)
    for key in ("engine", "memory", "l2", "stats", "objects",
                "request_globals", "allocator"):
        assert tree[key] is not None


def test_sampled_run_resumes_bit_identically(tmp_path):
    config = _small(config_3d_fast())
    plan = SamplingPlan()
    path = str(tmp_path / "cell.snap")
    oracle = Machine(config, MIX, seed=7).run_sampled(
        plan, WARMUP, MEASURE,
        snapshot=SnapshotPlan(every=EVERY, write=False),
    )
    machine = Machine(config, MIX, seed=7)
    preemption.clear()
    preemption.request_preemption()
    with pytest.raises(SnapshotPreempted):
        try:
            machine.run_sampled(
                plan, WARMUP, MEASURE,
                snapshot=SnapshotPlan(
                    path=path, every=EVERY, preemptible=True
                ),
            )
        finally:
            preemption.clear()
    resumed_machine = Machine(config, MIX, seed=7)
    resumed_machine.resume(path)
    resumed = resumed_machine.run_sampled(
        plan, WARMUP, MEASURE,
        snapshot=SnapshotPlan(every=EVERY, write=False),
    )
    assert dataclasses.asdict(resumed) == dataclasses.asdict(oracle)
