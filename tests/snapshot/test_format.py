"""The crash-safe snapshot file format: refusal is the feature.

A snapshot is either read back exactly as written or refused with a
:class:`~repro.common.errors.SnapshotError` subclass — never partially
applied, never silently repaired.  These tests exercise the refusal
paths byte by byte.
"""

import pickle

import pytest

from repro.common.errors import (
    SnapshotConfigMismatch,
    SnapshotError,
    SnapshotFormatError,
    SnapshotSchemaError,
)
from repro.snapshot.format import (
    SCHEMA_VERSION,
    decode_payload,
    read_snapshot_file,
    read_snapshot_header,
    write_snapshot_file,
)

FP = "a" * 64

TREE = {
    "v": 1,
    "nested": [1, 2.5, "three", None, True, b"bytes"],
    "pairs": {"k": (1, 2), "deep": {"x": [0] * 64}},
}


@pytest.fixture
def snap(tmp_path):
    path = tmp_path / "cell.snap"
    write_snapshot_file(str(path), TREE, config_fingerprint=FP,
                        meta={"cycle": 123, "workload": "H1"})
    return path


def test_round_trip(snap):
    header, tree = read_snapshot_file(str(snap), expected_fingerprint=FP)
    assert tree == TREE
    assert header["schema"] == SCHEMA_VERSION
    assert header["config_fingerprint"] == FP
    assert header["meta"] == {"cycle": 123, "workload": "H1"}


def test_header_probe_does_not_need_payload(snap):
    header = read_snapshot_header(str(snap))
    assert header["meta"]["cycle"] == 123


def test_truncation_refused_at_every_byte_offset(snap):
    """A torn write of any length must be refused, never resumed."""
    blob = snap.read_bytes()
    torn = snap.parent / "torn.snap"
    for cut in range(len(blob)):
        torn.write_bytes(blob[:cut])
        with pytest.raises(SnapshotError):
            read_snapshot_file(str(torn))
    # The intact file still reads: refusal is about damage, not paranoia.
    _, tree = read_snapshot_file(str(snap))
    assert tree == TREE


def test_payload_byte_flips_fail_the_checksum(snap):
    blob = bytearray(snap.read_bytes())
    payload_start = blob.index(b"\n", blob.index(b"\n") + 1) + 1
    flipped = snap.parent / "flipped.snap"
    for offset in range(payload_start, len(blob)):
        blob[offset] ^= 0xFF
        flipped.write_bytes(bytes(blob))
        blob[offset] ^= 0xFF
        with pytest.raises(SnapshotFormatError):
            read_snapshot_file(str(flipped))


def test_trailing_garbage_is_refused(snap):
    grown = snap.parent / "grown.snap"
    grown.write_bytes(snap.read_bytes() + b"x")
    with pytest.raises(SnapshotFormatError):
        read_snapshot_file(str(grown))


def test_wrong_magic_is_refused(tmp_path):
    path = tmp_path / "not.snap"
    path.write_bytes(b"NOT-A-SNAPSHOT 1\n{}\n")
    with pytest.raises(SnapshotFormatError):
        read_snapshot_file(str(path))


def test_future_schema_is_refused(snap):
    blob = snap.read_bytes()
    future = snap.parent / "future.snap"
    future.write_bytes(
        blob.replace(
            b"REPRO-SNAPSHOT %d\n" % SCHEMA_VERSION,
            b"REPRO-SNAPSHOT %d\n" % (SCHEMA_VERSION + 1),
            1,
        )
    )
    with pytest.raises(SnapshotSchemaError) as excinfo:
        read_snapshot_file(str(future))
    assert excinfo.value.found == SCHEMA_VERSION + 1
    assert excinfo.value.expected == SCHEMA_VERSION


def test_fingerprint_mismatch_is_refused(snap):
    with pytest.raises(SnapshotConfigMismatch) as excinfo:
        read_snapshot_file(str(snap), expected_fingerprint="b" * 64)
    assert excinfo.value.found == FP
    # Without an expectation the same file loads fine (force path).
    _, tree = read_snapshot_file(str(snap))
    assert tree == TREE


def test_atomic_write_replaces_not_appends(snap):
    write_snapshot_file(str(snap), {"v": 2}, config_fingerprint=FP)
    _, tree = read_snapshot_file(str(snap))
    assert tree == {"v": 2}
    leftovers = list(snap.parent.glob(".snapshot-*"))
    assert leftovers == []


def test_payload_refuses_code_references():
    """The restricted unpickler turns any global lookup into a refusal."""
    for evil in (print, pickle.Unpickler, SnapshotError("x")):
        with pytest.raises(SnapshotFormatError):
            decode_payload(pickle.dumps(evil))


def test_payload_refuses_non_pickle_bytes():
    with pytest.raises(SnapshotFormatError):
        decode_payload(b"\x80\x05 definitely not a pickle")
