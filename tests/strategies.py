"""Seeded pure-stdlib generators for property-style tests.

No third-party dependency: everything derives from ``random.Random``
with an explicit seed, so a failing example is reproducible from the
seed alone (and pytest parametrization over seeds gives breadth).
The generators are shared by the checker self-tests, the DRAM property
tests, and the MSHR golden-stats tests.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterator, List, Tuple

from repro.dram.timing import (
    DramTiming,
    ddr2_commodity,
    stacked_commodity,
    true_3d,
)

#: The per-array timing parameters a bug could shrink.
TIMING_PARAMS: Tuple[str, ...] = ("t_rcd", "t_cas", "t_rp", "t_ras", "t_wr")

TIMING_PRESETS = (ddr2_commodity, stacked_commodity, true_3d)

#: (gap to previous access, row, is_write)
AccessSeq = List[Tuple[int, int, bool]]


def access_sequence(
    seed: int,
    length: int = 80,
    rows: int = 8,
    max_gap: int = 200,
    write_fraction: float = 0.3,
) -> AccessSeq:
    """A random bank access sequence: mixed gaps, rows, and directions."""
    rng = random.Random(seed)
    return [
        (
            rng.randint(0, max_gap),
            rng.randrange(rows),
            rng.random() < write_fraction,
        )
        for _ in range(length)
    ]


def conflict_stress_sequence(
    seed: int, length: int = 60, rows: int = 2, max_gap: int = 2
) -> AccessSeq:
    """Back-to-back row conflicts with heavy writes.

    Tight gaps keep every access bound by the bank's ready times (tRC,
    tWR via dirty evictions, tCCD) instead of wall-clock gaps, so
    shrinking *any* array t-parameter changes some data time.
    """
    rng = random.Random(seed ^ 0xC0FFEE)
    sequence: AccessSeq = []
    row = 0
    for _ in range(length):
        # Mostly alternate rows (guaranteed conflicts with a 1-entry
        # row-buffer cache), occasionally repeat (row hits exercise tCCD).
        if rng.random() < 0.8:
            row = (row + 1 + rng.randrange(rows - 1)) % rows if rows > 1 else 0
        sequence.append((rng.randint(0, max_gap), row, rng.random() < 0.5))
    return sequence


def address_stream(
    seed: int,
    length: int = 200,
    pattern: str = "mixed",
    line_size: int = 64,
    footprint_lines: int = 512,
) -> List[int]:
    """A stream of line-aligned addresses in a bounded footprint.

    Patterns: ``sequential`` (streaming), ``strided`` (fixed stride),
    ``hot`` (Zipf-ish reuse of a few lines), ``random`` (uniform), and
    ``mixed`` (random interleaving of the others).
    """
    rng = random.Random(seed ^ 0xADD4)
    choices = ("sequential", "strided", "hot", "random")
    if pattern not in choices + ("mixed",):
        raise ValueError(f"unknown pattern {pattern!r}")
    hot_set = [rng.randrange(footprint_lines) for _ in range(8)]
    stride = rng.choice((2, 3, 5, 17))
    stream: List[int] = []
    cursor = rng.randrange(footprint_lines)
    for index in range(length):
        mode = pattern if pattern != "mixed" else choices[rng.randrange(4)]
        if mode == "sequential":
            cursor = (cursor + 1) % footprint_lines
            line = cursor
        elif mode == "strided":
            cursor = (cursor + stride) % footprint_lines
            line = cursor
        elif mode == "hot":
            line = hot_set[rng.randrange(len(hot_set))]
        else:
            line = rng.randrange(footprint_lines)
        stream.append(line * line_size)
    return stream


def random_timing(seed: int) -> DramTiming:
    """A legal timing: a preset, optionally uniformly slowed (never sped up)."""
    rng = random.Random(seed ^ 0x7141)
    timing = rng.choice(TIMING_PRESETS)()
    if rng.random() < 0.5:
        factor = 1.0 + rng.random()  # [1, 2): slower is always legal
        timing = timing.scaled(factor)
    return timing


def shrink_timing(timing: DramTiming, param: str, factor: float = 0.5) -> DramTiming:
    """A copy with one t-parameter shrunk — an *illegal* speedup.

    Keeps the dataclass invariants satisfiable (``t_ras >= t_rcd``) so
    the mutant constructs; the mutation is guaranteed to differ from the
    original (the shrunken value is strictly smaller).
    """
    if param not in TIMING_PARAMS:
        raise ValueError(f"unknown timing parameter {param!r}")
    value = getattr(timing, param)
    shrunk = max(1, round(value * factor))
    if shrunk >= value:
        shrunk = value - 1
    if shrunk < 1:
        raise ValueError(f"{param}={value} cannot shrink further")
    if param == "t_ras":
        shrunk = max(shrunk, timing.t_rcd)
        if shrunk >= value:
            raise ValueError("t_ras cannot shrink below t_rcd")
    return dataclasses.replace(timing, **{param: shrunk})


def timing_mutations(
    timing: DramTiming, factor: float = 0.5
) -> Iterator[Tuple[str, DramTiming]]:
    """Every single-parameter shrink of ``timing`` that constructs."""
    for param in TIMING_PARAMS:
        try:
            yield param, shrink_timing(timing, param, factor)
        except ValueError:
            continue
