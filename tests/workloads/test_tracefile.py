"""Unit tests for trace capture/replay."""

import itertools

import pytest

from repro.cpu.trace import TraceItem
from repro.workloads import synthetic as syn
from repro.workloads.tracefile import (
    capture,
    read_trace,
    read_trace_batches,
    trace_length,
    write_trace,
)

ITEMS = [
    TraceItem(0, 0x1000, False, 0x400),
    TraceItem(5, 0xDEADBEEF, True, 0x404),
    TraceItem(100, 0x0, False, 0x0),
]


def test_roundtrip(tmp_path):
    path = tmp_path / "trace.txt"
    assert write_trace(ITEMS, path) == 3
    assert list(read_trace(path)) == ITEMS


def test_gzip_roundtrip(tmp_path):
    path = tmp_path / "trace.txt.gz"
    write_trace(ITEMS, path)
    assert list(read_trace(path)) == ITEMS
    # Actually compressed on disk.
    assert path.read_bytes()[:2] == b"\x1f\x8b"


def test_capture_from_generator(tmp_path):
    path = tmp_path / "stream.trace"
    generator = syn.stream_kernel(0, array_bytes=4096,
                                  reads_per_element=1, writes_per_element=1)
    assert capture(generator, 50, path) == 50
    assert trace_length(path) == 50
    replayed = list(read_trace(path))
    fresh = list(itertools.islice(
        syn.stream_kernel(0, array_bytes=4096,
                          reads_per_element=1, writes_per_element=1), 50))
    assert replayed == fresh


def test_loop_replay(tmp_path):
    path = tmp_path / "t.txt"
    write_trace(ITEMS, path)
    looped = list(itertools.islice(read_trace(path, loop=True), 7))
    assert looped == ITEMS + ITEMS + ITEMS[:1]


def test_comments_and_blank_lines_skipped(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("# header\n\n0 1000 R 400\n")
    items = list(read_trace(path))
    assert items == [TraceItem(0, 0x1000, False, 0x400)]


def test_malformed_record_raises(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("0 1000 X 400\n")
    with pytest.raises(ValueError, match="malformed"):
        list(read_trace(path))


@pytest.mark.parametrize("record", [
    "0 1000 R",              # too few fields
    "0 1000 R 400 extra",    # too many fields
    "0 zz R 400",            # non-hex address
    "x 1000 R 400",          # non-integer gap
    "0 1000 W 0xzz",         # non-hex pc
])
def test_malformed_variants_name_file_and_line(tmp_path, record):
    path = tmp_path / "t.txt"
    path.write_text(f"# header\n0 1000 R 400\n{record}\n")
    with pytest.raises(ValueError, match=r"t\.txt:3: malformed"):
        list(read_trace(path))


def test_good_records_before_malformed_are_yielded(tmp_path):
    """Streaming: parsing is lazy, so earlier records arrive first."""
    path = tmp_path / "t.txt"
    path.write_text("3 1000 W 400\nbogus line here\n")
    stream = read_trace(path)
    assert next(stream) == TraceItem(3, 0x1000, True, 0x400)
    with pytest.raises(ValueError, match="malformed"):
        next(stream)


def test_roundtrip_many_random_items(tmp_path):
    import random

    rng = random.Random(99)
    items = [
        TraceItem(
            gap=rng.randrange(0, 500),
            addr=rng.randrange(0, 1 << 48),
            is_write=rng.random() < 0.3,
            pc=rng.randrange(0, 1 << 32),
        )
        for _ in range(2000)
    ]
    path = tmp_path / "big.trace.gz"
    assert write_trace(items, path) == 2000
    assert list(read_trace(path)) == items
    assert trace_length(path) == 2000


def test_eof_without_loop_exhausts_cleanly(tmp_path):
    path = tmp_path / "t.txt"
    write_trace(ITEMS, path)
    stream = read_trace(path)
    for expected in ITEMS:
        assert next(stream) == expected
    with pytest.raises(StopIteration):
        next(stream)
    # A fresh iterator starts over from the first record.
    assert next(read_trace(path)) == ITEMS[0]


def test_truncated_gzip_raises_eof(tmp_path):
    path = tmp_path / "t.trace.gz"
    write_trace(ITEMS * 200, path)
    clipped = tmp_path / "clipped.trace.gz"
    clipped.write_bytes(path.read_bytes()[:-8])  # drop the gzip trailer
    with pytest.raises(EOFError):
        list(read_trace(clipped))


def test_empty_file_raises(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("# nothing\n")
    with pytest.raises(ValueError, match="no records"):
        list(read_trace(path))


def test_capture_validation(tmp_path):
    with pytest.raises(ValueError):
        capture(iter([]), 0, tmp_path / "t.txt")


def test_replayed_trace_drives_a_core(tmp_path):
    """End to end: captured trace -> file -> core simulation."""
    from repro.common.address import PageAllocator
    from repro.cache.array import CacheArray
    from repro.cache.l1 import L1Cache
    from repro.cpu.core import Core
    from repro.engine import Engine
    from repro.mshr.conventional import ConventionalMshr

    path = tmp_path / "replay.trace"
    capture(syn.sequential_scan(0, footprint=1 << 20, gap=4), 500, path)

    class InstantL2:
        def __init__(self, engine):
            self.engine = engine

        def access(self, request):
            self.engine.schedule(20, request.complete, self.engine.now + 20)

    engine = Engine()
    l1 = L1Cache(
        engine, 0, CacheArray(4096, 4, 64), ConventionalMshr(8),
        InstantL2(engine),
    )
    core = Core(engine, 0, read_trace(path, loop=True), l1, PageAllocator())
    core.start()
    core.begin_measurement(1_000)
    engine.run(stop_when=lambda: core.frozen, until=10_000_000)
    assert core.frozen
    assert core.frozen_ipc > 0


# ----------------------------------------------------------------------
# Columnar streaming (read_trace_batches)
# ----------------------------------------------------------------------

def _flatten(batches):
    return [item for batch in batches for item in batch]


@pytest.mark.parametrize("batch_size", [1, 2, 3, 1024])
def test_read_trace_batches_matches_row_reader(tmp_path, batch_size):
    path = tmp_path / "t.txt"
    write_trace(ITEMS, path)
    batches = list(read_trace_batches(path, batch_size=batch_size))
    assert _flatten(batches) == list(read_trace(path))
    # Every batch is full except possibly the file's tail.
    assert all(len(b) == batch_size for b in batches[:-1])


def test_read_trace_batches_gzip(tmp_path):
    path = tmp_path / "t.trace.gz"
    write_trace(ITEMS, path)
    assert _flatten(read_trace_batches(path, batch_size=2)) == ITEMS


def test_read_trace_batches_loop_restarts_at_wrap(tmp_path):
    path = tmp_path / "t.txt"
    write_trace(ITEMS, path)
    stream = read_trace_batches(path, batch_size=2, loop=True)
    batches = list(itertools.islice(stream, 7))
    # 3 items per pass at size 2 -> batches of 2, 1 then wrap.
    assert [len(b) for b in batches] == [2, 1, 2, 1, 2, 1, 2]
    assert _flatten(batches) == ITEMS + ITEMS + ITEMS + ITEMS[:2]


def test_read_trace_batches_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("# header\n\n0 1000 R 400\n\n# tail\n5 2000 W 404\n")
    (batch,) = read_trace_batches(path, batch_size=16)
    assert list(batch) == [
        TraceItem(0, 0x1000, False, 0x400),
        TraceItem(5, 0x2000, True, 0x404),
    ]


def test_read_trace_batches_malformed_and_empty_raise(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("0 1000 X 400\n")
    with pytest.raises(ValueError, match="malformed"):
        list(read_trace_batches(path))
    path.write_text("# only comments\n")
    with pytest.raises(ValueError, match="no records"):
        list(read_trace_batches(path))
    with pytest.raises(ValueError, match="batch_size"):
        next(read_trace_batches(path, batch_size=0))


def test_read_trace_batches_feeds_batched_machine(tmp_path):
    """A captured file replayed in columnar form is a valid batch source."""
    from repro.cpu.trace import BatchedTrace

    generator = syn.stream_kernel(0, array_bytes=4096,
                                  reads_per_element=1, writes_per_element=1)
    path = tmp_path / "stream.trace"
    capture(generator, 200, path)
    trace = BatchedTrace(read_trace_batches(path, batch_size=64))
    assert list(itertools.islice(trace, 200)) == list(read_trace(path))


def test_read_trace_batches_throughput(tmp_path):
    """Regression guard: the columnar reader must not fall behind the
    per-item reader (in practice it is well ahead; the slack absorbs
    timer noise on shared CI hosts)."""
    import time

    generator = syn.stream_kernel(0, array_bytes=1 << 20,
                                  reads_per_element=2, writes_per_element=1)
    path = tmp_path / "big.trace"
    n = capture(generator, 20_000, path)

    def consume_rows():
        count = 0
        for _ in read_trace(path):
            count += 1
        return count

    def consume_batches():
        count = 0
        for batch in read_trace_batches(path, batch_size=1024):
            count += len(batch)
        return count

    # Warm the page cache so the first timed pass isn't penalised.
    assert consume_rows() == n
    start = time.perf_counter()
    assert consume_rows() == n
    row_seconds = time.perf_counter() - start
    start = time.perf_counter()
    assert consume_batches() == n
    batch_seconds = time.perf_counter() - start
    assert batch_seconds < row_seconds * 1.5, (
        f"columnar reader regressed: {batch_seconds:.3f}s vs "
        f"row reader {row_seconds:.3f}s over {n} records"
    )
