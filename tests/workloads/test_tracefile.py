"""Unit tests for trace capture/replay."""

import itertools

import pytest

from repro.cpu.trace import TraceItem
from repro.workloads import synthetic as syn
from repro.workloads.tracefile import capture, read_trace, trace_length, write_trace

ITEMS = [
    TraceItem(0, 0x1000, False, 0x400),
    TraceItem(5, 0xDEADBEEF, True, 0x404),
    TraceItem(100, 0x0, False, 0x0),
]


def test_roundtrip(tmp_path):
    path = tmp_path / "trace.txt"
    assert write_trace(ITEMS, path) == 3
    assert list(read_trace(path)) == ITEMS


def test_gzip_roundtrip(tmp_path):
    path = tmp_path / "trace.txt.gz"
    write_trace(ITEMS, path)
    assert list(read_trace(path)) == ITEMS
    # Actually compressed on disk.
    assert path.read_bytes()[:2] == b"\x1f\x8b"


def test_capture_from_generator(tmp_path):
    path = tmp_path / "stream.trace"
    generator = syn.stream_kernel(0, array_bytes=4096,
                                  reads_per_element=1, writes_per_element=1)
    assert capture(generator, 50, path) == 50
    assert trace_length(path) == 50
    replayed = list(read_trace(path))
    fresh = list(itertools.islice(
        syn.stream_kernel(0, array_bytes=4096,
                          reads_per_element=1, writes_per_element=1), 50))
    assert replayed == fresh


def test_loop_replay(tmp_path):
    path = tmp_path / "t.txt"
    write_trace(ITEMS, path)
    looped = list(itertools.islice(read_trace(path, loop=True), 7))
    assert looped == ITEMS + ITEMS + ITEMS[:1]


def test_comments_and_blank_lines_skipped(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("# header\n\n0 1000 R 400\n")
    items = list(read_trace(path))
    assert items == [TraceItem(0, 0x1000, False, 0x400)]


def test_malformed_record_raises(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("0 1000 X 400\n")
    with pytest.raises(ValueError, match="malformed"):
        list(read_trace(path))


def test_empty_file_raises(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("# nothing\n")
    with pytest.raises(ValueError, match="no records"):
        list(read_trace(path))


def test_capture_validation(tmp_path):
    with pytest.raises(ValueError):
        capture(iter([]), 0, tmp_path / "t.txt")


def test_replayed_trace_drives_a_core(tmp_path):
    """End to end: captured trace -> file -> core simulation."""
    from repro.common.address import PageAllocator
    from repro.cache.array import CacheArray
    from repro.cache.l1 import L1Cache
    from repro.cpu.core import Core
    from repro.engine import Engine
    from repro.mshr.conventional import ConventionalMshr

    path = tmp_path / "replay.trace"
    capture(syn.sequential_scan(0, footprint=1 << 20, gap=4), 500, path)

    class InstantL2:
        def __init__(self, engine):
            self.engine = engine

        def access(self, request):
            self.engine.schedule(20, request.complete, self.engine.now + 20)

    engine = Engine()
    l1 = L1Cache(
        engine, 0, CacheArray(4096, 4, 64), ConventionalMshr(8),
        InstantL2(engine),
    )
    core = Core(engine, 0, read_trace(path, loop=True), l1, PageAllocator())
    core.start()
    core.begin_measurement(1_000)
    engine.run(stop_when=lambda: core.frozen, until=10_000_000)
    assert core.frozen
    assert core.frozen_ipc > 0
