"""Unit tests for the synthetic trace generators."""

import itertools

import pytest

from repro.cpu.trace import TraceItem
from repro.workloads import synthetic as syn


def _take(trace, n):
    return list(itertools.islice(trace, n))


def test_stream_copy_pattern():
    items = _take(syn.stream_kernel(0, array_bytes=1024, reads_per_element=1,
                                    writes_per_element=1, element_size=8), 8)
    # Alternating read/write, lockstep over two arrays.
    assert [i.is_write for i in items] == [False, True] * 4
    assert items[0].addr == 0 and items[1].addr == 1024
    assert items[2].addr == 8 and items[3].addr == 1024 + 8


def test_stream_arrays_are_disjoint():
    base = 1 << 20
    items = _take(syn.stream_kernel(base, array_bytes=4096,
                                    reads_per_element=2, writes_per_element=1), 300)
    reads = {i.addr for i in items if not i.is_write}
    writes = {i.addr for i in items if i.is_write}
    assert all(base <= a < base + 8192 for a in reads)
    assert all(base + 8192 <= a < base + 12288 for a in writes)


def test_stream_wraps_after_full_sweep():
    items = _take(syn.stream_kernel(0, array_bytes=64, reads_per_element=1,
                                    writes_per_element=0, element_size=8), 16)
    assert items[8].addr == items[0].addr


def test_stream_all_rotates_kernels():
    items = _take(syn.stream_all(0, array_bytes=512), 4000)
    # All four kernel regions get touched.
    regions = {i.addr // (4 * 512) for i in items}
    assert len(regions) >= 4


def test_stream_validation():
    with pytest.raises(ValueError):
        next(syn.stream_kernel(0, 1024, 0, 0))


def test_sequential_scan_strides_and_wraps():
    items = _take(syn.sequential_scan(0, footprint=256, stride=64, gap=5), 6)
    assert [i.addr for i in items] == [0, 64, 128, 192, 0, 64]
    assert all(i.gap == 5 for i in items)


def test_random_uniform_stays_in_footprint():
    items = _take(syn.random_uniform(1 << 30, footprint=4096, seed=7), 500)
    assert all((1 << 30) <= i.addr < (1 << 30) + 4096 for i in items)


def test_random_uniform_rmw_pairs():
    items = _take(syn.random_uniform(0, footprint=1 << 20, rmw=True, seed=7), 10)
    for read, write in zip(items[::2], items[1::2]):
        assert not read.is_write and write.is_write
        assert read.addr == write.addr


def test_pointer_chase_visits_lines_without_repeats_within_pass():
    items = _take(syn.pointer_chase(0, footprint=64 * 64, gap=1, seed=3), 64)
    lines = [i.addr // 64 for i in items]
    assert len(set(lines)) == len(lines)  # full-period LCG: no repeats
    assert all(0 <= l < 64 for l in lines)


def test_pointer_chase_is_not_sequential():
    items = _take(syn.pointer_chase(0, footprint=1 << 20, gap=1, seed=3), 100)
    deltas = {items[k + 1].addr - items[k].addr for k in range(99)}
    assert len(deltas) > 10  # nothing stride-predictable


def test_strided_single_stream():
    items = _take(
        syn.strided(0, footprint=1 << 20, stride=128, gap=7, num_streams=1), 4
    )
    assert [i.addr for i in items] == [0, 128, 256, 384]
    assert all(i.gap == 7 for i in items)


def test_strided_multi_stream_round_robins_disjoint_regions():
    items = _take(
        syn.strided(0, footprint=3 << 20, stride=64, gap=7, num_streams=3), 6
    )
    region = 1 << 20
    assert [i.addr for i in items] == [
        0, region, 2 * region, 64, region + 64, 2 * region + 64,
    ]


def test_strided_streams_have_distinct_pcs():
    items = _take(
        syn.strided(0, footprint=3 << 20, stride=64, gap=7, num_streams=3), 3
    )
    assert len({i.pc for i in items}) == 3  # trainable per-stream strides


def test_strided_validation():
    with pytest.raises(ValueError):
        next(syn.strided(0, 1 << 20, 64, 1, num_streams=0))


def test_hot_cold_fractions():
    items = _take(
        syn.hot_cold(0, hot_bytes=4096, cold_bytes=1 << 20,
                     cold_fraction=0.25, seed=11),
        4000,
    )
    cold = sum(1 for i in items if i.addr >= 4096)
    assert 0.18 < cold / len(items) < 0.32


def test_hot_cold_validation():
    with pytest.raises(ValueError):
        next(syn.hot_cold(0, 4096, 4096, cold_fraction=1.5))


def test_generators_are_deterministic():
    a = _take(syn.random_uniform(0, 1 << 20, seed=5), 50)
    b = _take(syn.random_uniform(0, 1 << 20, seed=5), 50)
    c = _take(syn.random_uniform(0, 1 << 20, seed=6), 50)
    assert a == b
    assert a != c


def test_interleave_round_robin():
    t1 = iter([TraceItem(0, 1, False, 0)] * 5)
    t2 = iter([TraceItem(0, 2, False, 0)] * 5)
    items = _take(syn.interleave([t1, t2]), 4)
    assert [i.addr for i in items] == [1, 2, 1, 2]


def test_interleave_requires_traces():
    with pytest.raises(ValueError):
        next(syn.interleave([]))


def test_zipf_concentrates_on_hot_lines():
    items = _take(syn.zipf(0, footprint=1 << 20, alpha=1.2, seed=9), 4000)
    from collections import Counter

    counts = Counter(i.addr for i in items)
    top_share = sum(c for _, c in counts.most_common(10)) / len(items)
    assert top_share > 0.25  # heavy head
    assert len(counts) > 100  # long tail


def test_zipf_alpha_controls_skew():
    def head_share(alpha):
        items = _take(syn.zipf(0, 1 << 20, alpha=alpha, seed=9), 3000)
        from collections import Counter

        counts = Counter(i.addr for i in items)
        return sum(c for _, c in counts.most_common(5)) / len(items)

    assert head_share(1.5) > head_share(0.6)


def test_zipf_stays_in_footprint_and_validates():
    items = _take(syn.zipf(1 << 30, footprint=4096, seed=1), 200)
    assert all((1 << 30) <= i.addr < (1 << 30) + 4096 for i in items)
    with pytest.raises(ValueError):
        next(syn.zipf(0, 4096, alpha=0.0))


def test_phased_switches_generators():
    a = iter([TraceItem(0, 1, False, 0)] * 100)
    b = iter([TraceItem(0, 2, False, 0)] * 100)
    items = _take(syn.phased([a, b], phase_length=3), 9)
    assert [i.addr for i in items] == [1, 1, 1, 2, 2, 2, 1, 1, 1]


def test_phased_validation():
    with pytest.raises(ValueError):
        next(syn.phased([], 5))
    with pytest.raises(ValueError):
        next(syn.phased([iter([TraceItem(0, 1, False, 0)])], 0))
