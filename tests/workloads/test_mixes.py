"""Unit tests for the Table 2(b) workload mixes."""

import pytest

from repro.workloads.benchmarks import BENCHMARKS
from repro.workloads.mixes import (
    MIX_ORDER,
    MIXES,
    WorkloadMix,
    get_mix,
    mixes_in_groups,
)


def test_twelve_mixes_in_four_groups():
    assert len(MIXES) == 12
    groups = {}
    for mix in MIXES.values():
        groups.setdefault(mix.group, []).append(mix.name)
    assert {g: len(v) for g, v in groups.items()} == {
        "H": 3, "VH": 3, "HM": 3, "M": 3,
    }


def test_mix_order_covers_all():
    assert set(MIX_ORDER) == set(MIXES)


def test_every_mix_has_four_known_benchmarks():
    for mix in MIXES.values():
        assert len(mix.benchmarks) == 4
        assert all(b in BENCHMARKS for b in mix.benchmarks)


def test_table2b_contents():
    assert MIXES["H1"].benchmarks == ("S.all", "libquantum", "wupwise", "mcf")
    assert MIXES["VH1"].benchmarks == ("S.all",) * 4
    assert MIXES["M3"].benchmarks == ("mgrid", "mesa", "zeusmp", "namd")


def test_paper_hmipc_recorded_and_ordered():
    assert MIXES["VH2"].paper_hmipc == 0.058
    assert MIXES["M3"].paper_hmipc == 1.523
    # Group-level ordering: VH slowest, M fastest.
    vh = max(m.paper_hmipc for m in MIXES.values() if m.group == "VH")
    h = max(m.paper_hmipc for m in MIXES.values() if m.group == "H")
    m_min = min(m.paper_hmipc for m in MIXES.values() if m.group == "M")
    assert vh < h < m_min


def test_mixes_in_groups_keeps_evaluation_order():
    hv = mixes_in_groups("H", "VH")
    assert [m.name for m in hv] == ["H1", "H2", "H3", "VH1", "VH2", "VH3"]


def test_get_mix_error():
    with pytest.raises(KeyError, match="H1"):
        get_mix("Z9")


def test_unknown_benchmark_rejected():
    with pytest.raises(ValueError):
        WorkloadMix("X", "H", ("S.all", "S.all", "S.all", "quake3"), 0.1)
