"""Unit tests for the Table 2(a) benchmark specifications."""

import itertools

import pytest

from repro.workloads.benchmarks import BENCHMARKS, get_benchmark

TABLE2A_NAMES = {
    "S.copy", "S.add", "S.all", "S.triad", "S.scale",
    "tigr", "qsort", "libquantum", "soplex", "milc",
    "wupwise", "equake", "lbm", "mcf",
    "mummer", "swim", "omnetpp", "applu", "mgrid", "apsi",
    "h264", "mesa", "gzip", "astar", "zeusmp", "bzip2", "vortex", "namd",
}


def test_all_table2a_benchmarks_present():
    # The paper's text says "24 applications" but Table 2(a) lists 28
    # rows (the Stream decompositions are counted oddly); we implement
    # every row of the table.
    assert set(BENCHMARKS) == TABLE2A_NAMES
    assert len(BENCHMARKS) == 28


def test_paper_mpki_values_recorded():
    assert BENCHMARKS["S.copy"].paper_mpki == 326.9
    assert BENCHMARKS["mcf"].paper_mpki == 35.1
    assert BENCHMARKS["namd"].paper_mpki == 1.0


def test_stream_family_tops_the_table():
    stream = [s for n, s in BENCHMARKS.items() if n.startswith("S.")]
    others = [s for n, s in BENCHMARKS.items() if not n.startswith("S.")]
    assert min(s.paper_mpki for s in stream) > max(o.paper_mpki for o in others)


@pytest.mark.parametrize("name", sorted(TABLE2A_NAMES))
def test_every_trace_yields_valid_items(name):
    spec = get_benchmark(name)
    base = 7 << 40
    items = list(itertools.islice(spec.trace(base, seed=3), 200))
    assert len(items) == 200
    for item in items:
        assert item.addr >= base
        assert item.gap >= 0
        assert isinstance(item.is_write, bool)


@pytest.mark.parametrize("name", sorted(TABLE2A_NAMES))
def test_traces_are_deterministic_per_seed(name):
    spec = get_benchmark(name)
    a = list(itertools.islice(spec.trace(0, seed=9), 50))
    b = list(itertools.islice(spec.trace(0, seed=9), 50))
    assert a == b


def test_intensity_ordering_follows_paper_bands():
    """Refs per kilo-instruction must be ordered with paper MPKI bands."""

    def refs_per_kinstr(name):
        spec = get_benchmark(name)
        items = list(itertools.islice(spec.trace(0, seed=1), 2000))
        instrs = sum(i.gap + 1 for i in items)
        return 1000 * len(items) / instrs

    assert refs_per_kinstr("S.copy") > refs_per_kinstr("milc")
    assert refs_per_kinstr("milc") > refs_per_kinstr("mgrid")
    assert refs_per_kinstr("tigr") > refs_per_kinstr("mummer")


def test_get_benchmark_error_lists_names():
    with pytest.raises(KeyError, match="S.copy"):
        get_benchmark("doom3")


def test_base_cpi_positive():
    assert all(s.base_cpi > 0 for s in BENCHMARKS.values())
