"""Unit and property tests for the occupancy-modelled bus."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect.bus import Bus
from repro.interconnect.links import offchip_fsb, tsv_bus


def test_occupancy_scales_with_size_and_width():
    bus = Bus(width_bytes=8, cycles_per_beat=2)
    assert bus.occupancy_cycles(64) == 16
    assert bus.occupancy_cycles(8) == 2
    assert bus.occupancy_cycles(1) == 2  # rounds up to one beat


def test_transfer_returns_start_and_arrival():
    bus = Bus(width_bytes=8, cycles_per_beat=1, wire_latency=5)
    start, arrival = bus.transfer(64, earliest_start=100)
    assert start == 100
    assert arrival == 100 + 8 + 5


def test_back_to_back_transfers_queue():
    bus = Bus(width_bytes=8, cycles_per_beat=1)
    bus.transfer(64, earliest_start=0)
    start, arrival = bus.transfer(64, earliest_start=0)
    assert start == 8
    assert arrival == 16
    assert bus.free_at == 16


def test_gap_leaves_bus_idle():
    bus = Bus(width_bytes=8, cycles_per_beat=1)
    bus.transfer(8, earliest_start=0)
    start, _ = bus.transfer(8, earliest_start=100)
    assert start == 100


def test_peek_does_not_reserve():
    bus = Bus(width_bytes=8, cycles_per_beat=1)
    before = bus.peek_arrival(64, 0)
    assert bus.free_at == 0
    start, arrival = bus.transfer(64, 0)
    assert arrival == before


def test_stats_and_utilization():
    bus = Bus(width_bytes=8, cycles_per_beat=1)
    bus.transfer(64, 0)
    bus.transfer(64, 0)  # queues 8 cycles
    assert bus.stats.get("transfers") == 2
    assert bus.stats.get("busy_cycles") == 16
    assert bus.stats.get("queue_cycles") == 8
    assert bus.utilization(32) == 0.5


def test_link_presets_match_paper():
    fsb = offchip_fsb()
    # 64-bit at 1.666 GT/s: 8 bytes every 2 CPU cycles; 64 B line = 16.
    assert fsb.occupancy_cycles(64) == 16
    assert fsb.wire_latency > 0
    narrow = tsv_bus(8)
    wide = tsv_bus(64)
    assert narrow.occupancy_cycles(64) == 8
    assert wide.occupancy_cycles(64) == 1
    assert wide.wire_latency == 0


@pytest.mark.parametrize(
    "kwargs",
    [dict(width_bytes=0), dict(width_bytes=8, cycles_per_beat=0),
     dict(width_bytes=8, wire_latency=-1)],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        Bus(**kwargs)


@settings(max_examples=60)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=256),  # size
            st.integers(min_value=0, max_value=1000),  # earliest start
        ),
        max_size=50,
    )
)
def test_property_transfers_never_overlap(transfers):
    bus = Bus(width_bytes=8, cycles_per_beat=2)
    intervals = []
    for size, earliest in transfers:
        start, arrival = bus.transfer(size, earliest)
        end = start + bus.occupancy_cycles(size)
        assert start >= earliest
        assert arrival == end + bus.wire_latency
        intervals.append((start, end))
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1, "bus transfers overlapped"
