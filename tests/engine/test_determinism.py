"""Golden-order determinism: the calendar-queue engine vs the heap oracle.

The hybrid wheel+heap :class:`Engine` must fire events in an order
bit-identical to the plain binary-heap :class:`HeapEngine`: global
``(time, seq)`` order, FIFO within a cycle, cancelled events silently
skipped, and far-future (heap-resident) events interleaving correctly
with wheel-resident ones when they land on the same cycle.

Each scenario drives both engines with the *same* deterministic schedule
(fresh ``random.Random(seed)`` per engine) and compares the full firing
transcripts.
"""

import random

import pytest

from repro.engine import Engine, HeapEngine


def _drive(engine_cls, seed, events=3_000):
    """A randomized self-extending workload; returns the firing transcript.

    Mixes every scheduling pattern the machine model uses: short delays
    (wheel), zero delays (same-cycle continuation), bursts on one cycle
    (FIFO), cancellations of pending events, and far-future delays beyond
    the wheel horizon (refresh-style heap residents).
    """
    engine = engine_cls()
    rng = random.Random(seed)
    transcript = []
    pending = []
    counter = [0]

    def tick(tag):
        transcript.append((engine.now, tag))
        if counter[0] >= events:
            return
        roll = rng.random()
        if roll < 0.40:  # short delay: wheel path
            counter[0] += 1
            engine.schedule(rng.randrange(1, 60), tick, counter[0])
        elif roll < 0.55:  # same-cycle burst: FIFO within one cycle
            for _ in range(rng.randrange(2, 5)):
                counter[0] += 1
                engine.schedule(0, tick, counter[0])
        elif roll < 0.70:  # keep a handle around for later cancellation
            counter[0] += 1
            pending.append(engine.schedule(rng.randrange(1, 300), tick, counter[0]))
            counter[0] += 1
            engine.schedule(1, tick, counter[0])
        elif roll < 0.85 and pending:  # cancel one pending event
            pending.pop(rng.randrange(len(pending))).cancel()
            counter[0] += 1
            engine.schedule(2, tick, counter[0])
        else:  # far future: beyond the wheel horizon, heap path
            counter[0] += 1
            engine.schedule(rng.randrange(600, 20_000), tick, counter[0])

    engine.schedule(0, tick, 0)
    engine.run()
    return transcript, engine.now, engine.events_fired


@pytest.mark.parametrize("seed", [11, 1234, 987654])
def test_random_schedules_match_heap_oracle(seed):
    wheel = _drive(Engine, seed)
    heap = _drive(HeapEngine, seed)
    assert wheel == heap


def test_same_cycle_tie_between_heap_and_wheel_breaks_on_seq():
    """A heap resident and wheel residents on one cycle fire in seq order.

    The far-future event is scheduled first (lower seq, heap path); the
    same-cycle wheel arrivals are scheduled later (higher seq).  Both
    engines must run the heap event first.
    """
    orders = []
    for engine_cls in (Engine, HeapEngine):
        engine = engine_cls()
        fired = []
        horizon = 512
        target = horizon + 100
        engine.schedule(target, fired.append, "far-first")

        def arm(engine=engine, fired=fired, target=target):
            # now == target - 10 < target: the new events take the wheel.
            engine.schedule_at(target, fired.append, "near-1")
            engine.schedule_at(target, fired.append, "near-2")

        engine.schedule(target - 10, arm)
        engine.run()
        orders.append(fired)
    assert orders[0] == orders[1] == ["far-first", "near-1", "near-2"]


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_far_future_refresh_interleaves_with_short_delays(engine_cls):
    """Refresh-style periodic far events interleave exactly by (time, seq)."""
    engine = engine_cls()
    fired = []

    def refresh(n):
        fired.append(("refresh", engine.now))
        if n:
            engine.schedule(1_000, refresh, n - 1)

    def work(n):
        fired.append(("work", engine.now))
        if n:
            engine.schedule(37, work, n - 1)

    engine.schedule(1_000, refresh, 5)
    engine.schedule(1, work, 150)
    engine.run()
    expected_times = sorted(t for _, t in fired)
    assert [t for _, t in fired] == expected_times
    assert fired.count(("refresh", 1_000)) == 1
    assert len([1 for kind, _ in fired if kind == "refresh"]) == 6
