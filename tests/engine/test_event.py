"""Unit tests for the Event primitive."""

from repro.engine.event import Event


def _noop():
    pass


def test_ordering_by_time():
    early = Event(5, 0, _noop, ())
    late = Event(9, 1, _noop, ())
    assert early < late
    assert not late < early


def test_ties_broken_by_sequence_number():
    first = Event(5, 0, _noop, ())
    second = Event(5, 1, _noop, ())
    assert first < second
    assert not second < first


def test_cancel_marks_event():
    event = Event(0, 0, _noop, ())
    assert not event.cancelled
    event.cancel()
    assert event.cancelled


def test_event_carries_args():
    event = Event(3, 0, _noop, (1, "x"))
    assert event.args == (1, "x")
    assert event.time == 3
