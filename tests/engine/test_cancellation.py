"""Lazy cancellation: cancelled events never fire and never advance time.

``run()`` and ``step()`` share one extraction helper (``_pop_live``), so
both must discard cancelled events without touching ``now``, the fired
counter, or event budgets.  Also covers the far-future heap compaction
that bounds memory under cancel-heavy loads.
"""

import pytest

from repro.engine import Engine, HeapEngine, SimulationHang


def _assert_wheel_consistent(engine):
    """The wheel count must match the buckets, slot by slot."""
    resident = sum(
        len(bucket) for bucket in engine._wheel if bucket is not None
    )
    assert resident == engine._wheel_count
    assert engine.pending == engine._wheel_count + len(engine._heap)


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_cancelled_events_never_advance_now_in_step(engine_cls):
    engine = engine_cls()
    engine.schedule(5, lambda: None).cancel()
    engine.schedule(10, lambda: None)
    assert engine.step() is True  # fires the live event at t=10 directly
    assert engine.now == 10
    assert engine.events_fired == 1


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_all_cancelled_queue_drains_without_time_motion(engine_cls):
    engine = engine_cls()
    for delay in (3, 7, 7, 900):  # wheel residents and a heap resident
        engine.schedule(delay, lambda: None).cancel()
    assert engine.step() is False
    assert engine.now == 0
    assert engine.events_fired == 0
    engine.run()
    assert engine.now == 0


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_cancelled_events_never_advance_now_in_run(engine_cls):
    engine = engine_cls()
    times = []
    engine.schedule(4, lambda: None).cancel()
    engine.schedule(8, lambda: times.append(engine.now))
    engine.schedule(6, lambda: None).cancel()
    engine.run()
    assert times == [8]
    assert engine.now == 8
    assert engine.events_fired == 1


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_cancelled_events_do_not_consume_budget(engine_cls):
    engine = engine_cls()
    fired = []
    for i in range(10):
        event = engine.schedule(1 + i, fired.append, i)
        if i % 2:
            event.cancel()
    engine.run(max_events=5)  # exactly the 5 live events
    assert fired == [0, 2, 4, 6, 8]


def test_cancelled_same_cycle_siblings_are_skipped_in_batch():
    """Within one wheel slot, cancels interleaved with live events."""
    engine = Engine()
    fired = []
    events = [engine.schedule(5, fired.append, i) for i in range(6)]
    events[0].cancel()
    events[3].cancel()
    events[5].cancel()
    engine.run()
    assert fired == [1, 2, 4]
    assert engine.now == 5


def test_heap_compaction_bounds_cancelled_residents():
    """Far-future cancels trigger an in-place heap rebuild."""
    engine = Engine()
    keep = engine.schedule(50_000, lambda: None)
    doomed = [engine.schedule(10_000 + i, lambda: None) for i in range(200)]
    assert engine.pending == 201
    for event in doomed:
        event.cancel()
    # Compaction kicked in: most cancelled events physically removed
    # (up to COMPACT_MIN_CANCELLED stragglers may remain), the live
    # far-future event retained.
    assert engine.pending < 66
    assert not keep.cancelled
    engine.run()
    assert engine.now == 50_000


def test_cancel_from_inside_same_cycle_batch():
    """An event cancelling a later same-cycle sibling prevents its firing."""
    engine = Engine()
    fired = []
    holder = {}

    def killer():
        fired.append("killer")
        holder["victim"].cancel()

    engine.schedule(3, killer)
    holder["victim"] = engine.schedule(3, fired.append, "victim")
    engine.schedule(3, fired.append, "survivor")
    engine.run()
    assert fired == ["killer", "survivor"]


# ----------------------------------------------------------------------
# Lazy-compaction edge cases: the *last* event in a calendar slot at the
# current cycle gets cancelled.  The slot must be released (not leaked as
# a cancelled-only bucket), the wheel count must stay exact, and time
# must never move.
# ----------------------------------------------------------------------
def test_cancel_last_event_in_current_cycle_slot_after_step():
    engine = Engine()
    fired = []
    engine.schedule(5, fired.append, "a")
    leftover = engine.schedule(5, fired.append, "b")
    assert engine.step() is True  # fires "a"; "b" stays in the live slot
    assert engine.now == 5
    leftover.cancel()  # now the last event in the slot at the current cycle
    assert engine.step() is False
    assert engine.now == 5
    assert fired == ["a"]
    assert engine._wheel[5 & engine._mask] is None  # slot released
    _assert_wheel_consistent(engine)


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_cancel_current_cycle_leftover_then_run_to_later_event(engine_cls):
    engine = engine_cls()
    fired = []
    engine.schedule(5, fired.append, "a")
    leftover = engine.schedule(5, fired.append, "b")
    engine.step()
    leftover.cancel()
    engine.schedule(20, fired.append, "c")  # cycle 25
    engine.run()
    assert fired == ["a", "c"]
    assert engine.now == 25
    assert engine.pending == 0


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_cancel_event_spawned_into_current_cycle_during_batch(engine_cls):
    """A delay-0 event born and killed inside the same cycle's batch.

    On the calendar engine the spawned event forms a *fresh* bucket in
    the already-detached current slot; cancelling it leaves that bucket
    cancelled-only, which the next outer pass must release without
    firing anything or advancing time.
    """
    engine = engine_cls()
    fired = []
    holder = {}

    def spawner():
        fired.append("spawner")
        holder["victim"] = engine.schedule(0, fired.append, "victim")

    def killer():
        fired.append("killer")
        holder["victim"].cancel()

    engine.schedule(3, spawner)
    engine.schedule(3, killer)
    engine.run()
    assert fired == ["spawner", "killer"]
    assert engine.now == 3
    assert engine.pending == 0
    if engine_cls is Engine:
        assert engine._wheel[3 & engine._mask] is None
        _assert_wheel_consistent(engine)


def test_cancelled_current_slot_with_wraparound_live_event():
    """The released slot must not stall the scan when the next live
    event's slot index wraps around *behind* the cursor."""
    engine = Engine()
    fired = []
    engine.schedule(5, fired.append, "first")
    doomed = engine.schedule(5, fired.append, "doomed")
    engine.step()  # now = 5, "doomed" is the current-slot leftover
    doomed.cancel()
    horizon = engine.horizon
    # Slot (5 + horizon - 1) & mask == 4: one position behind the cursor.
    engine.schedule(horizon - 1, fired.append, "far")
    engine.run()
    assert fired == ["first", "far"]
    assert engine.now == 5 + horizon - 1
    assert engine.pending == 0
    _assert_wheel_consistent(engine)


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_cancelled_only_event_before_until_deadline(engine_cls):
    engine = engine_cls()
    fired = []
    engine.schedule(10, fired.append, "early").cancel()
    engine.schedule(100, fired.append, "late")
    engine.run(until=50)
    assert fired == []
    assert engine.now == 50
    engine.run()
    assert fired == ["late"]
    assert engine.now == 100


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_cancel_after_until_bound_unpop(engine_cls):
    """Cancel an event that was popped and reinserted by an `until` stop.

    The cancelled sentinel before the deadline forces the calendar
    engine down the one-event cold path, so "blocked" is extracted,
    found past the deadline, and unpopped to the front of its slot —
    then cancelled while it is the last event there.
    """
    engine = engine_cls()
    fired = []
    engine.schedule(10, fired.append, "a")
    engine.schedule(60, lambda: None).cancel()
    blocked = engine.schedule(100, fired.append, "blocked")
    engine.run(until=50)
    assert fired == ["a"]
    assert engine.now == 50
    blocked.cancel()
    engine.run()
    assert fired == ["a"]
    assert engine.now == 50  # drained without firing or advancing
    assert engine.pending == 0
    if engine_cls is Engine:
        _assert_wheel_consistent(engine)


def test_heap_event_migrated_to_wheel_then_cancelled():
    """An `until` stop can unpop a far-future heap event into the wheel
    once time has advanced enough; cancelling it there must not disturb
    the heap's cancelled-event accounting."""
    engine = Engine()
    fired = []
    engine.schedule(200, fired.append, "wheel")
    far = engine.schedule(600, fired.append, "far")  # heap resident
    engine.schedule(300, lambda: None).cancel()  # forces the cold path
    engine.run(until=400)
    assert fired == ["wheel"]
    assert engine.now == 400
    assert len(engine._heap) == 0  # "far" migrated to the wheel
    far.cancel()  # last event in its wheel slot
    assert engine._heap_cancelled == 0  # wheel cancels never count here
    engine.run()
    assert fired == ["wheel"]
    assert engine.now == 400
    assert engine.pending == 0
    _assert_wheel_consistent(engine)


def test_stop_requeued_tail_entirely_cancelled():
    """request_stop() mid-batch requeues the tail; if the tail is all
    cancelled, the next run must release it without firing."""
    engine = Engine()
    fired = []
    holder = {}

    def killer():
        fired.append("killer")
        holder["victim"].cancel()
        engine.request_stop()

    engine.schedule(3, killer)
    holder["victim"] = engine.schedule(3, fired.append, "victim")
    engine.run()
    assert fired == ["killer"]
    assert engine.pending == 1  # the cancelled tail was requeued
    _assert_wheel_consistent(engine)
    engine.run()
    assert fired == ["killer"]
    assert engine.now == 3
    assert engine.pending == 0
    assert engine._wheel[3 & engine._mask] is None


def test_budgeted_batch_skips_cancelled_last_event():
    engine = Engine()
    fired = []
    events = [engine.schedule(4, fired.append, i) for i in range(4)]
    events[3].cancel()  # last event in the slot
    engine.run(max_events=3)  # budget covers exactly the live events
    assert fired == [0, 1, 2]
    assert engine.now == 4
    assert engine.pending == 0
    _assert_wheel_consistent(engine)


def test_budget_exhaustion_requeues_cancelled_tail():
    engine = Engine()
    fired = []
    events = [engine.schedule(4, fired.append, i) for i in range(4)]
    events[2].cancel()
    with pytest.raises(SimulationHang):
        engine.run(max_events=1)
    assert fired == [0]
    _assert_wheel_consistent(engine)
    engine.run()
    assert fired == [0, 1, 3]
    assert engine.now == 4
    assert engine.pending == 0
    _assert_wheel_consistent(engine)
