"""Lazy cancellation: cancelled events never fire and never advance time.

``run()`` and ``step()`` share one extraction helper (``_pop_live``), so
both must discard cancelled events without touching ``now``, the fired
counter, or event budgets.  Also covers the far-future heap compaction
that bounds memory under cancel-heavy loads.
"""

import pytest

from repro.engine import Engine, HeapEngine


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_cancelled_events_never_advance_now_in_step(engine_cls):
    engine = engine_cls()
    engine.schedule(5, lambda: None).cancel()
    engine.schedule(10, lambda: None)
    assert engine.step() is True  # fires the live event at t=10 directly
    assert engine.now == 10
    assert engine.events_fired == 1


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_all_cancelled_queue_drains_without_time_motion(engine_cls):
    engine = engine_cls()
    for delay in (3, 7, 7, 900):  # wheel residents and a heap resident
        engine.schedule(delay, lambda: None).cancel()
    assert engine.step() is False
    assert engine.now == 0
    assert engine.events_fired == 0
    engine.run()
    assert engine.now == 0


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_cancelled_events_never_advance_now_in_run(engine_cls):
    engine = engine_cls()
    times = []
    engine.schedule(4, lambda: None).cancel()
    engine.schedule(8, lambda: times.append(engine.now))
    engine.schedule(6, lambda: None).cancel()
    engine.run()
    assert times == [8]
    assert engine.now == 8
    assert engine.events_fired == 1


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_cancelled_events_do_not_consume_budget(engine_cls):
    engine = engine_cls()
    fired = []
    for i in range(10):
        event = engine.schedule(1 + i, fired.append, i)
        if i % 2:
            event.cancel()
    engine.run(max_events=5)  # exactly the 5 live events
    assert fired == [0, 2, 4, 6, 8]


def test_cancelled_same_cycle_siblings_are_skipped_in_batch():
    """Within one wheel slot, cancels interleaved with live events."""
    engine = Engine()
    fired = []
    events = [engine.schedule(5, fired.append, i) for i in range(6)]
    events[0].cancel()
    events[3].cancel()
    events[5].cancel()
    engine.run()
    assert fired == [1, 2, 4]
    assert engine.now == 5


def test_heap_compaction_bounds_cancelled_residents():
    """Far-future cancels trigger an in-place heap rebuild."""
    engine = Engine()
    keep = engine.schedule(50_000, lambda: None)
    doomed = [engine.schedule(10_000 + i, lambda: None) for i in range(200)]
    assert engine.pending == 201
    for event in doomed:
        event.cancel()
    # Compaction kicked in: most cancelled events physically removed
    # (up to COMPACT_MIN_CANCELLED stragglers may remain), the live
    # far-future event retained.
    assert engine.pending < 66
    assert not keep.cancelled
    engine.run()
    assert engine.now == 50_000


def test_cancel_from_inside_same_cycle_batch():
    """An event cancelling a later same-cycle sibling prevents its firing."""
    engine = Engine()
    fired = []
    holder = {}

    def killer():
        fired.append("killer")
        holder["victim"].cancel()

    engine.schedule(3, killer)
    holder["victim"] = engine.schedule(3, fired.append, "victim")
    engine.schedule(3, fired.append, "survivor")
    engine.run()
    assert fired == ["killer", "survivor"]
