"""``request_stop``: callback-driven run termination.

The fast alternative to a ``stop_when`` predicate — the component that
satisfies the condition calls ``engine.request_stop()`` from inside its
own callback, and the run returns once that callback does.  Events not
yet fired (including later same-cycle siblings) must survive, in order,
for a subsequent run.
"""

import pytest

from repro.engine import Engine, HeapEngine


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_request_stop_halts_after_current_callback(engine_cls):
    engine = engine_cls()
    fired = []

    def stopper():
        fired.append("stopper")
        engine.request_stop()

    engine.schedule(5, stopper)
    engine.schedule(10, fired.append, "later")
    engine.run()
    assert fired == ["stopper"]
    assert engine.now == 5
    assert engine.pending == 1


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_same_cycle_siblings_survive_and_fire_fifo_on_resume(engine_cls):
    engine = engine_cls()
    fired = []

    def stopper():
        fired.append("stopper")
        engine.request_stop()

    engine.schedule(5, fired.append, "before")
    engine.schedule(5, stopper)
    engine.schedule(5, fired.append, "after-1")
    engine.schedule(5, fired.append, "after-2")
    engine.run()
    assert fired == ["before", "stopper"]
    assert engine.now == 5

    # The un-fired same-cycle tail runs in seq order on the next run.
    engine.run()
    assert fired == ["before", "stopper", "after-1", "after-2"]
    assert engine.now == 5


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_run_clears_a_prior_stop_request_at_entry(engine_cls):
    engine = engine_cls()
    engine.schedule(1, engine.request_stop)
    engine.schedule(2, lambda: None)
    engine.run()
    assert engine.now == 1
    # The stale flag must not abort the fresh run before its first event.
    engine.schedule(3, lambda: None)  # fires at absolute time 1 + 3 = 4
    engine.run()
    assert engine.now == 4
    assert engine.pending == 0


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
def test_stop_interacts_with_later_scheduling_from_resumed_run(engine_cls):
    """Events scheduled after a stop land behind the surviving tail."""
    engine = engine_cls()
    fired = []

    def stopper():
        fired.append("stopper")
        engine.request_stop()

    engine.schedule(4, stopper)
    engine.schedule(4, fired.append, "tail")
    engine.run()
    engine.schedule_at(4, fired.append, "new-same-cycle")
    engine.run()
    assert fired == ["stopper", "tail", "new-same-cycle"]
