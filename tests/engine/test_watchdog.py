"""Watchdog, deadlock detection, and event-budget accounting."""

import pytest

from repro.engine import (
    Engine,
    SimulationDeadlock,
    SimulationError,
    SimulationHang,
    Watchdog,
)


def test_max_events_raises_structured_hang():
    engine = Engine()

    def reschedule():
        engine.schedule(1, reschedule)

    engine.schedule(0, reschedule)
    with pytest.raises(SimulationHang) as excinfo:
        engine.run(max_events=100)
    exc = excinfo.value
    assert isinstance(exc, SimulationError)  # old except-sites still catch
    assert exc.events_fired == 100
    assert exc.queue_depth >= 1
    assert "queued" in str(exc)


def test_max_events_budget_is_per_run():
    engine = Engine()
    for t in range(10):
        engine.schedule(t, lambda: None)
    engine.run()
    assert engine.events_fired == 10
    # A fresh run gets a fresh budget: 3 events under a budget of 5.
    for t in range(3):
        engine.schedule(t, lambda: None)
    engine.run(max_events=5)
    assert engine.events_fired == 13


def test_cancelled_events_do_not_count_against_budget():
    engine = Engine()
    fired = []
    events = [engine.schedule(t, fired.append, t) for t in range(6)]
    for event in events[:3]:
        event.cancel()
    engine.run(max_events=3)  # only the 3 live events count
    assert fired == [3, 4, 5]
    assert engine.events_fired == 3


def test_run_and_step_account_identically():
    run_engine, step_engine = Engine(), Engine()
    for engine in (run_engine, step_engine):
        kept = [engine.schedule(t, lambda: None) for t in range(5)]
        kept[2].cancel()
    run_engine.run()
    while step_engine.step():
        pass
    assert run_engine.events_fired == step_engine.events_fired == 4


def test_watchdog_max_events():
    engine = Engine()

    def reschedule():
        engine.schedule(1, reschedule)

    engine.schedule(0, reschedule)
    with pytest.raises(SimulationHang):
        engine.run(watchdog=Watchdog(max_events=50))


def test_watchdog_tighter_budget_wins():
    engine = Engine()

    def reschedule():
        engine.schedule(1, reschedule)

    engine.schedule(0, reschedule)
    with pytest.raises(SimulationHang) as excinfo:
        engine.run(max_events=1000, watchdog=Watchdog(max_events=10))
    assert excinfo.value.events_fired == 10


def test_watchdog_max_cycles():
    engine = Engine()
    fired = []
    engine.schedule(5, fired.append, "early")
    engine.schedule(500, fired.append, "late")
    with pytest.raises(SimulationHang) as excinfo:
        engine.run(watchdog=Watchdog(max_cycles=100))
    assert fired == ["early"]
    assert "max_cycles" in str(excinfo.value)


def test_deadlock_detected_when_queue_drains_with_pending_work():
    engine = Engine()
    engine.schedule(10, lambda: None)
    with pytest.raises(SimulationDeadlock) as excinfo:
        engine.run(watchdog=Watchdog(pending_work=lambda: 3))
    exc = excinfo.value
    assert exc.pending_work == 3
    assert exc.cycle == 10
    assert "outstanding" in str(exc)


def test_no_deadlock_when_no_pending_work():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run(watchdog=Watchdog(pending_work=lambda: 0))
    assert engine.now == 10


def test_no_deadlock_check_when_stopped_early():
    # stop_when returning True is a normal stop, not queue exhaustion:
    # outstanding work is expected mid-simulation.
    engine = Engine()
    fired = []
    for t in range(1, 4):
        engine.schedule(t, fired.append, t)
    engine.run(
        stop_when=lambda: len(fired) >= 1,
        watchdog=Watchdog(pending_work=lambda: 99),
    )
    assert fired == [1]


def test_no_deadlock_check_at_until_deadline():
    engine = Engine()
    engine.schedule(100, lambda: None)
    engine.run(until=10, watchdog=Watchdog(pending_work=lambda: 99))
    assert engine.now == 10
