"""Edge-case tests for the event engine."""

import pytest

from repro.engine import Engine, SimulationError


def test_cancel_from_within_a_callback():
    engine = Engine()
    fired = []
    later = engine.schedule(10, fired.append, "later")

    def canceller():
        later.cancel()
        fired.append("canceller")

    engine.schedule(5, canceller)
    engine.run()
    assert fired == ["canceller"]


def test_exception_in_callback_propagates_and_preserves_time():
    engine = Engine()

    def boom():
        raise RuntimeError("injected failure")

    engine.schedule(7, boom)
    engine.schedule(9, lambda: None)
    with pytest.raises(RuntimeError, match="injected failure"):
        engine.run()
    # Time advanced to the failing event; the queue still holds the rest.
    assert engine.now == 7
    assert engine.pending == 1
    engine.run()  # recovery: remaining events still run
    assert engine.now == 9


def test_reschedule_same_callback_many_times():
    engine = Engine()
    count = [0]

    def tick():
        count[0] += 1

    events = [engine.schedule(1, tick) for _ in range(100)]
    for event in events[::2]:
        event.cancel()
    engine.run()
    assert count[0] == 50


def test_stop_when_true_immediately_fires_exactly_one_event():
    engine = Engine()
    fired = []
    engine.schedule(1, fired.append, 1)
    engine.schedule(2, fired.append, 2)
    engine.run(stop_when=lambda: True)
    assert fired == [1]


def test_until_exactly_at_event_time_fires_it():
    engine = Engine()
    fired = []
    engine.schedule(10, fired.append, "x")
    engine.run(until=10)
    assert fired == ["x"]


def test_schedule_at_current_time_during_callback():
    engine = Engine()
    order = []

    def first():
        order.append("first")
        engine.schedule_at(engine.now, lambda: order.append("same-cycle"))

    engine.schedule(5, first)
    engine.schedule(5, lambda: order.append("second"))
    engine.run()
    # The same-cycle event runs after already-queued time-5 events (FIFO).
    assert order == ["first", "second", "same-cycle"]


def test_max_events_none_means_unbounded():
    engine = Engine()
    for _ in range(1000):
        engine.schedule(1, lambda: None)
    engine.run()  # must not raise
    assert engine.events_fired == 1000
