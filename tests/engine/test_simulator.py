"""Unit tests for the discrete-event engine."""

import pytest

from repro.engine import Engine, SimulationError


def test_time_starts_at_zero():
    assert Engine().now == 0


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule(30, fired.append, "c")
    engine.schedule(10, fired.append, "a")
    engine.schedule(20, fired.append, "b")
    engine.run()
    assert fired == ["a", "b", "c"]
    assert engine.now == 30


def test_same_cycle_events_fire_fifo():
    engine = Engine()
    fired = []
    for tag in range(5):
        engine.schedule(7, fired.append, tag)
    engine.run()
    assert fired == [0, 1, 2, 3, 4]


def test_schedule_in_past_raises():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5, lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(5, fired.append, "no")
    engine.schedule(6, fired.append, "yes")
    event.cancel()
    engine.run()
    assert fired == ["yes"]


def test_run_until_stops_before_later_events():
    engine = Engine()
    fired = []
    engine.schedule(5, fired.append, "early")
    engine.schedule(50, fired.append, "late")
    engine.run(until=10)
    assert fired == ["early"]
    assert engine.now == 10
    engine.run()
    assert fired == ["early", "late"]


def test_run_until_advances_time_with_empty_queue():
    engine = Engine()
    engine.run(until=123)
    assert engine.now == 123


def test_stop_when_predicate_halts_run():
    engine = Engine()
    fired = []
    for t in range(1, 6):
        engine.schedule(t, fired.append, t)
    engine.run(stop_when=lambda: len(fired) >= 3)
    assert fired == [1, 2, 3]
    engine.run()
    assert fired == [1, 2, 3, 4, 5]


def test_max_events_guard():
    engine = Engine()

    def reschedule():
        engine.schedule(1, reschedule)

    engine.schedule(0, reschedule)
    with pytest.raises(SimulationError):
        engine.run(max_events=100)


def test_events_scheduled_during_run_fire():
    engine = Engine()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            engine.schedule(1, chain, depth + 1)

    engine.schedule(0, chain, 0)
    engine.run()
    assert fired == [0, 1, 2, 3]
    assert engine.now == 3


def test_step_returns_false_on_empty_queue():
    engine = Engine()
    assert engine.step() is False
    engine.schedule(1, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_events_fired_counter():
    engine = Engine()
    for _ in range(4):
        engine.schedule(1, lambda: None)
    engine.run()
    assert engine.events_fired == 4


def test_zero_delay_event_fires_at_current_time():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    fired_at = []
    engine.schedule(0, lambda: fired_at.append(engine.now))
    engine.run()
    assert fired_at == [10]
