"""Result cache: verified reads, atomic writes, quarantine semantics."""

import json

from repro.experiments import faults
from repro.experiments.faults import ServiceFaultSpec
from repro.service.cache import ResultCache

from .conftest import fabricated_result

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "1" * 62


def test_round_trip_is_exact(tmp_path):
    cache = ResultCache(tmp_path)
    stored = fabricated_result("M1", ipc=1.0 / 3.0)  # non-terminating float
    cache.put(KEY_A, stored)
    loaded = cache.get(KEY_A)
    assert loaded is not None
    assert loaded.cores[0].ipc == stored.cores[0].ipc  # bit-exact
    assert loaded.hmipc == stored.hmipc
    assert loaded.total_cycles == stored.total_cycles
    assert loaded.l2_stats == stored.l2_stats
    assert cache.stats["hits"] == 1 and cache.stats["writes"] == 1


def test_miss_on_absent_key(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(KEY_A) is None
    assert cache.stats == {
        "hits": 0, "misses": 1, "writes": 0, "corrupt_quarantined": 0
    }


def test_no_temp_files_left_behind(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY_A, fabricated_result("M1"))
    leftovers = [p for p in tmp_path.rglob("*.tmp.*")]
    assert leftovers == []


def test_flipped_byte_is_quarantined_not_served(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY_A, fabricated_result("M1"))
    path = cache.path_for(KEY_A)
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0x01
    path.write_bytes(bytes(data))

    assert cache.get(KEY_A) is None
    assert not path.exists()  # moved aside, not left to re-trip
    assert cache.stats["corrupt_quarantined"] == 1
    quarantined = list(cache.quarantine_dir.glob("*.json*"))
    assert len(quarantined) == 1
    # Rewrite + read works again.
    cache.put(KEY_A, fabricated_result("M1"))
    assert cache.get(KEY_A) is not None


def test_truncated_entry_is_quarantined(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY_A, fabricated_result("M1"))
    path = cache.path_for(KEY_A)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    assert cache.get(KEY_A) is None
    assert cache.stats["corrupt_quarantined"] == 1


def test_valid_entry_under_wrong_key_is_rejected(tmp_path):
    """A hand-copied entry (valid checksum, wrong filename) must miss."""
    cache = ResultCache(tmp_path)
    cache.put(KEY_A, fabricated_result("M1"))
    wrong = cache.path_for(KEY_B)
    wrong.parent.mkdir(parents=True, exist_ok=True)
    wrong.write_bytes(cache.path_for(KEY_A).read_bytes())
    assert cache.get(KEY_B) is None
    assert cache.stats["corrupt_quarantined"] == 1
    assert cache.get(KEY_A) is not None  # the original is untouched


def test_quarantine_names_never_collide(tmp_path):
    cache = ResultCache(tmp_path)
    for _ in range(3):
        cache.put(KEY_A, fabricated_result("M1"))
        path = cache.path_for(KEY_A)
        path.write_text("garbage")
        assert cache.get(KEY_A) is None
    assert len(list(cache.quarantine_dir.glob("*"))) == 3


def test_schema_confusion_is_corruption(tmp_path):
    """An entry that is valid JSON but not an entry is quarantined."""
    cache = ResultCache(tmp_path)
    path = cache.path_for(KEY_A)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"something": "else"}))
    assert cache.get(KEY_A) is None
    assert cache.stats["corrupt_quarantined"] == 1


def test_corrupt_cache_fault_fires_on_matching_write(tmp_path):
    """The chaos fault tampers the entry; the read path catches it."""
    cache = ResultCache(tmp_path)
    faults.install_service(
        ServiceFaultSpec("corrupt-cache", "base", "M1", times=1)
    )
    cache.put(KEY_A, fabricated_result("M1"), config_name="base", mix_name="M1")
    assert cache.get(KEY_A) is None  # detected, quarantined
    assert cache.stats["corrupt_quarantined"] == 1
    # times=1: the second write of the same cell is left alone.
    cache.put(KEY_A, fabricated_result("M1"), config_name="base", mix_name="M1")
    assert cache.get(KEY_A) is not None


def test_truncate_cache_fault_scopes_by_cell(tmp_path):
    cache = ResultCache(tmp_path)
    faults.install_service(
        ServiceFaultSpec("truncate-cache", "base", "M1", times=1)
    )
    cache.put(KEY_A, fabricated_result("M1"), config_name="base", mix_name="M1")
    cache.put(KEY_B, fabricated_result("M3"), config_name="base", mix_name="M3")
    assert cache.get(KEY_A) is None  # tampered
    assert cache.get(KEY_B) is not None  # different cell: untouched


def test_len_and_contains(tmp_path):
    cache = ResultCache(tmp_path)
    assert KEY_A not in cache and len(cache) == 0
    cache.put(KEY_A, fabricated_result("M1"))
    assert KEY_A in cache and len(cache) == 1
