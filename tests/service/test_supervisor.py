"""Worker supervision: restarts, retries, hang detection, breakers."""

import dataclasses
import os
import signal
import time

import pytest

from repro.experiments import faults
from repro.experiments.faults import FaultSpec, ServiceFaultSpec
from repro.service.supervisor import (
    CellTask,
    CircuitBreaker,
    ServicePolicy,
    WorkerSupervisor,
)
from repro.workloads.mixes import MIXES

from .conftest import TINY, small_config


def make_task(config_name="base", mix_name="M1", **config_overrides):
    config = small_config(config_name, **config_overrides)
    mix = MIXES[mix_name]
    return CellTask(
        config=config,
        mix_name=mix.name,
        benchmarks=tuple(mix.benchmarks),
        key="k" * 64,
        warmup_instructions=TINY.warmup_instructions,
        measure_instructions=TINY.measure_instructions,
        seed=42,
    )


FAST = ServicePolicy(
    workers=2,
    heartbeat_interval=0.05,
    heartbeat_timeout=2.0,
    retries=1,
    backoff_base=0.01,
    backoff_max=0.05,
)


def run_tasks(supervisor, tasks):
    results, failures, shed = [], [], []
    supervisor.run(
        tasks,
        on_result=lambda t, r: results.append((t, r)),
        on_failure=lambda t, f: failures.append((t, f)),
        on_shed=lambda t, f: shed.append((t, f)),
    )
    return results, failures, shed


@pytest.fixture()
def supervisor():
    sup = WorkerSupervisor(FAST)
    yield sup
    sup.shutdown()


def test_policy_validation():
    with pytest.raises(ValueError, match="workers"):
        ServicePolicy(workers=0)
    with pytest.raises(ValueError, match="heartbeat_timeout"):
        ServicePolicy(heartbeat_interval=1.0, heartbeat_timeout=0.5)
    with pytest.raises(ValueError, match="breaker_threshold"):
        ServicePolicy(breaker_threshold=0)


def test_runs_cells_and_reports_results(supervisor):
    tasks = [make_task(), make_task(mix_name="M3")]
    results, failures, shed = run_tasks(supervisor, tasks)
    assert len(results) == 2 and not failures and not shed
    by_mix = {task.mix_name: result for task, result in results}
    assert by_mix["M1"].workload == "M1"
    assert by_mix["M1"].total_cycles > 0


def test_workers_persist_across_runs(supervisor):
    run_tasks(supervisor, [make_task()])
    run_tasks(supervisor, [make_task(mix_name="M3")])
    # The pool was reused, not respawned per run.
    assert supervisor.stats["workers_started"] <= FAST.workers


def test_crashed_worker_is_replaced_and_cell_retried(supervisor):
    faults.install(FaultSpec("crash", "base", "M1", times=1))
    results, failures, _ = run_tasks(
        supervisor, [make_task(), make_task(mix_name="M3")]
    )
    assert len(results) == 2 and not failures
    assert supervisor.stats["workers_crashed"] == 1
    assert supervisor.stats["cells_retried"] == 1
    retried = next(t for t, _ in results if t.mix_name == "M1")
    assert retried.attempt == 2


def test_sigkill_fault_mid_cell_is_survived(supervisor):
    faults.install_service(
        ServiceFaultSpec("kill-worker", "base", "M1", times=1, seconds=0.0)
    )
    results, failures, _ = run_tasks(supervisor, [make_task()])
    assert len(results) == 1 and not failures
    assert supervisor.stats["workers_crashed"] >= 1


def test_retries_exhausted_becomes_failure(supervisor):
    faults.install(FaultSpec("raise", "base", "M1", times=-1))
    results, failures, _ = run_tasks(supervisor, [make_task()])
    assert not results and len(failures) == 1
    task, failure = failures[0]
    assert failure.error_type == "InjectedFault"
    assert failure.attempts == 2  # 1 + policy.retries


def test_heartbeat_silence_kills_live_worker():
    """Stalled heartbeats alone get the worker recycled (livelock guard)."""
    policy = dataclasses.replace(FAST, heartbeat_timeout=0.4)
    supervisor = WorkerSupervisor(policy)
    try:
        faults.install(FaultSpec("slow", "base", "M1", times=1, seconds=3.0))
        faults.install_service(
            ServiceFaultSpec("hb-delay", "base", "M1", times=1, seconds=30.0)
        )
        started = time.monotonic()
        results, failures, _ = run_tasks(supervisor, [make_task()])
        elapsed = time.monotonic() - started
        assert len(results) == 1 and not failures  # retry succeeded
        assert supervisor.stats["workers_hung_killed"] == 1
        # Killed on silence (~0.4s), not after the 3s slow cell finished.
        assert elapsed < 30.0
    finally:
        supervisor.shutdown()


def test_cell_timeout_kills_and_retries():
    policy = dataclasses.replace(FAST, cell_timeout=0.3)
    supervisor = WorkerSupervisor(policy)
    try:
        faults.install(FaultSpec("hang", "base", "M1", times=1, seconds=60.0))
        results, failures, _ = run_tasks(supervisor, [make_task()])
        assert len(results) == 1 and not failures
        assert supervisor.stats["cells_timed_out"] == 1
    finally:
        supervisor.shutdown()


def test_worker_pids_are_live(supervisor):
    run_tasks(supervisor, [make_task()])
    pids = supervisor.worker_pids()
    assert pids
    for pid in pids:
        os.kill(pid, 0)  # raises if dead


def test_external_sigkill_is_recovered(supervisor):
    """A worker killed from outside mid-idle is replaced transparently."""
    run_tasks(supervisor, [make_task()])
    for pid in supervisor.worker_pids():
        os.kill(pid, signal.SIGKILL)
    results, failures, _ = run_tasks(supervisor, [make_task(mix_name="M3")])
    assert len(results) == 1 and not failures


# ----------------------------------------------------------------------
# Circuit breaker


def test_breaker_opens_after_threshold():
    breaker = CircuitBreaker(threshold=2, cooldown=60.0)
    key = ("base", "M1")
    assert breaker.allow(key)
    breaker.record_failure(key)
    assert breaker.allow(key)  # one failure: still closed
    breaker.record_failure(key)
    assert not breaker.allow(key)  # threshold hit: open
    assert breaker.trips == 1
    assert breaker.state(key) == "open"


def test_breaker_half_open_probe_and_reset():
    breaker = CircuitBreaker(threshold=1, cooldown=0.05)
    key = ("base", "M1")
    breaker.record_failure(key)
    assert not breaker.allow(key)
    time.sleep(0.06)
    assert breaker.state(key) == "half-open"
    assert breaker.allow(key)  # one probe allowed
    breaker.record_success(key)
    assert breaker.state(key) == "closed"


def test_breaker_failed_probe_reopens():
    breaker = CircuitBreaker(threshold=1, cooldown=0.05)
    key = ("base", "M1")
    breaker.record_failure(key)
    time.sleep(0.06)
    assert breaker.allow(key)
    breaker.record_failure(key)  # probe failed
    assert not breaker.allow(key)  # cooldown restarted


def test_breaker_is_per_scenario():
    breaker = CircuitBreaker(threshold=1, cooldown=60.0)
    breaker.record_failure(("base", "M1"))
    assert not breaker.allow(("base", "M1"))
    assert breaker.allow(("base", "M3"))
    assert breaker.allow(("narrow", "M1"))


def test_supervisor_sheds_open_scenarios():
    policy = dataclasses.replace(
        FAST, retries=0, breaker_threshold=1, breaker_cooldown=60.0, workers=1
    )
    supervisor = WorkerSupervisor(policy)
    try:
        faults.install(FaultSpec("raise", "base", "M1", times=-1))
        # First run trips the breaker for (base, M1).
        _, failures, _ = run_tasks(supervisor, [make_task()])
        assert len(failures) == 1
        # Second run: shed without any attempt; other scenarios still run.
        results, failures, shed = run_tasks(
            supervisor, [make_task(), make_task(mix_name="M3")]
        )
        assert len(shed) == 1
        assert shed[0][1].error_type == "CircuitOpen"
        assert shed[0][1].attempts == 0
        assert len(results) == 1 and results[0][0].mix_name == "M3"
    finally:
        supervisor.shutdown()
