"""Durable job queue: replay, torn-tail recovery, admission control."""

import pytest

from repro.common.errors import ServiceOverloadError
from repro.experiments.persistence import scan_jsonl
from repro.experiments.runner import CellFailure
from repro.service.queue import CellOutcome, JobQueue, SweepSpec
from repro.workloads.mixes import MIXES

from .conftest import TINY, small_config


def outcome(config="base", mix="M1", source="sim", failure=None):
    return CellOutcome(
        config=config, mix=mix, key="k" * 64, source=source, failure=failure
    )


def test_sweep_spec_rejects_duplicate_names():
    with pytest.raises(ValueError, match="duplicate config names"):
        SweepSpec(
            configs=(small_config("base"), small_config("base")),
            mixes=(MIXES["M1"],), scale=TINY,
        )
    with pytest.raises(ValueError, match="duplicate mix names"):
        SweepSpec(
            configs=(small_config("base"),),
            mixes=(MIXES["M1"], MIXES["M1"]), scale=TINY,
        )


def test_sweep_spec_round_trips(tiny_spec):
    rebuilt = SweepSpec.from_dict(tiny_spec.to_dict())
    assert rebuilt == tiny_spec
    assert rebuilt.fingerprint() == tiny_spec.fingerprint()


def test_submit_and_replay(tmp_path, tiny_spec):
    path = tmp_path / "queue.jsonl"
    with JobQueue.open(path) as queue:
        job_id = queue.submit(tiny_spec)
        assert job_id.startswith("job-0001-")
        queue.set_state(job_id, "running")
        queue.record_cell(job_id, outcome())

    with JobQueue.open(path) as reopened:
        job = reopened.jobs[job_id]
        assert job.spec == tiny_spec
        assert ("base", "M1") in job.outcomes
        assert job.outcomes[("base", "M1")].source == "sim"
        # Interrupted mid-run: back to queued, flagged recovered.
        assert job.state == "queued" and job.recovered
        assert len(job.remaining_cells()) == 3


def test_job_ids_are_deterministic_and_unique(tmp_path, tiny_spec):
    with JobQueue.open(tmp_path / "q.jsonl") as queue:
        first = queue.submit(tiny_spec)
        second = queue.submit(tiny_spec)
    assert first != second  # same content, distinct submissions
    assert first.split("-", 2)[2] == second.split("-", 2)[2]  # same fingerprint


def test_failure_outcomes_replay(tmp_path, tiny_spec):
    path = tmp_path / "queue.jsonl"
    failure = CellFailure(
        config="base", mix="M1", error_type="InjectedFault",
        message="boom", traceback="tb", attempts=2, elapsed=0.5,
    )
    with JobQueue.open(path) as queue:
        job_id = queue.submit(tiny_spec)
        queue.record_cell(job_id, outcome(source="failure", failure=failure))
    with JobQueue.open(path) as reopened:
        restored = reopened.jobs[job_id].outcomes[("base", "M1")]
        assert not restored.ok
        assert restored.failure.error_type == "InjectedFault"
        assert restored.failure.attempts == 2


def test_torn_final_record_is_truncated_and_appendable(tmp_path, tiny_spec):
    path = tmp_path / "queue.jsonl"
    with JobQueue.open(path) as queue:
        job_id = queue.submit(tiny_spec)
        queue.record_cell(job_id, outcome())
        queue.record_cell(job_id, outcome(mix="M3"))
    intact = path.read_bytes()
    last_start = intact.rstrip(b"\n").rfind(b"\n") + 1
    # Tear the last record in half (kill -9 mid-append).
    path.write_bytes(intact[: last_start + (len(intact) - last_start) // 2])

    with JobQueue.open(path) as reopened:
        job = reopened.jobs[job_id]
        assert ("base", "M1") in job.outcomes  # survived
        assert ("base", "M3") not in job.outcomes  # torn away
        reopened.record_cell(job_id, outcome(mix="M3"))
    records, valid_bytes = scan_jsonl(path)
    assert valid_bytes == path.stat().st_size  # no glued/corrupt tail
    assert [r["kind"] for r in records].count("cell") == 2


def test_completed_jobs_pending_count_is_zero(tmp_path, tiny_spec):
    with JobQueue.open(tmp_path / "q.jsonl") as queue:
        job_id = queue.submit(tiny_spec)
        assert queue.pending_cell_count() == 4
        queue.set_state(job_id, "completed")
        assert queue.pending_cell_count() == 0


def test_admission_control_sheds_by_cell_count(tmp_path, tiny_spec):
    with JobQueue.open(tmp_path / "q.jsonl", max_pending_cells=6) as queue:
        queue.submit(tiny_spec)  # 4 pending cells
        with pytest.raises(ServiceOverloadError, match="queue full"):
            queue.submit(tiny_spec)  # 4 + 4 > 6

        # Progress frees admission capacity.
        job = queue.next_queued()
        for config, mix in list(job.spec.cells())[:2]:
            queue.record_cell(
                job.job_id, outcome(config=config.name, mix=mix.name)
            )
        queue.submit(tiny_spec)  # 2 + 4 <= 6: admitted


def test_rejects_foreign_journal(tmp_path):
    path = tmp_path / "bogus.jsonl"
    path.write_text('{"kind": "submit"}\n')
    with pytest.raises(ValueError, match="not a job-queue journal"):
        JobQueue.open(path)


def test_next_queued_is_fifo(tmp_path, tiny_spec, one_cell_spec):
    with JobQueue.open(tmp_path / "q.jsonl") as queue:
        first = queue.submit(tiny_spec)
        queue.submit(one_cell_spec)
        assert queue.next_queued().job_id == first
        queue.set_state(first, "completed")
        assert queue.next_queued().spec == one_cell_spec
