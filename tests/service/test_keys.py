"""Cache-key canonicalization: the contract the whole service rests on.

Two halves, both load-bearing:

* *stability* — keys must NOT change across process boundaries, dict
  field order, spelling variants of the same checkers/sampling spec, or
  a permuted benchmark list (canonical core placement makes a mix a
  multiset, see ``tests/integration/test_golden.py``);
* *sensitivity* — keys MUST change for anything that changes simulation
  output: any config knob, the RAS spec, checkers on/off, the sampling
  plan, the seed, the instruction budgets, and the config/mix names
  (embedded in the stored result).
"""

import dataclasses
import json
import os
import subprocess
import sys

from repro.ras.config import RasConfig
from repro.service.keys import (
    canonical_json,
    cell_key,
    cell_payload,
    config_from_dict,
    config_to_dict,
)
from repro.system.scale import ExperimentScale
from repro.workloads.mixes import MIXES

from .conftest import TINY, small_config

BASE = small_config("base")
M1 = MIXES["M1"]


def key(config=BASE, mix_name=M1.name, benchmarks=M1.benchmarks,
        scale=TINY, seed=42, checkers=None, sampling=None):
    return cell_key(config, mix_name, benchmarks, scale, seed,
                    checkers=checkers, sampling=sampling)


# ----------------------------------------------------------------------
# Stability: everything cosmetic hashes identically


def test_key_is_deterministic_in_process():
    assert key() == key()
    assert len(key()) == 64 and all(c in "0123456789abcdef" for c in key())


def test_key_stable_across_process_boundaries():
    """A fresh interpreter derives the same key (no per-process state,
    no hash randomization leakage, no dict-order dependence)."""
    from pathlib import Path

    tests_dir = Path(__file__).resolve().parent.parent
    src_dir = tests_dir.parent / "src"
    program = (
        f"import sys; sys.path.insert(0, {str(src_dir)!r}); "
        f"sys.path.insert(0, {str(tests_dir)!r})\n"
        "from service.test_keys import key\n"
        "print(key())\n"
    )
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "random"
    child = subprocess.run(
        [sys.executable, "-c", program],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert child.returncode == 0, child.stderr
    assert child.stdout.strip() == key()


def test_key_ignores_dict_field_order():
    """A config rebuilt from a field-reordered dict keys identically."""
    forward = config_to_dict(BASE)
    reordered = dict(reversed(list(forward.items())))
    rebuilt = config_from_dict(reordered)
    assert rebuilt == BASE
    assert key(config=rebuilt) == key()


def test_key_ignores_benchmark_order():
    """Permuted mixes are the same multiset → the same cached cell."""
    benchmarks = list(M1.benchmarks)
    permuted = benchmarks[::-1]
    assert permuted != benchmarks  # the permutation is real
    assert key(benchmarks=permuted) == key(benchmarks=benchmarks)


def test_key_preserves_repeated_benchmarks():
    """Sorting must not collapse duplicates: a multiset, not a set."""
    assert key(benchmarks=["mcf", "mcf", "gzip", "gzip"]) != key(
        benchmarks=["mcf", "gzip", "gzip", "gzip"]
    )


def test_key_ignores_benchmarks_container_type():
    assert key(benchmarks=tuple(M1.benchmarks)) == key(
        benchmarks=list(M1.benchmarks)
    )


def test_key_ignores_scale_name():
    """Two scales with equal budgets run the same simulation."""
    renamed = ExperimentScale("production", TINY.warmup_instructions,
                              TINY.measure_instructions)
    assert key(scale=renamed) == key()


def test_checker_spellings_normalize():
    """``all`` and the explicit full list share one cache entry."""
    from repro.validate import CHECKER_NAMES

    explicit = ",".join(CHECKER_NAMES)
    assert key(checkers="all") == key(checkers=explicit)
    shuffled = ",".join(reversed(CHECKER_NAMES))
    assert key(checkers="all") == key(checkers=shuffled)


def test_sampling_spellings_normalize():
    """``on`` and the default plan spelled out share one cache entry."""
    from repro.sampling.plan import SamplingPlan

    default = SamplingPlan()
    spelled = (
        f"detailed:{default.detailed}"
        f",warmup:{default.warmup}"
        f",detail_warmup:{default.detail_warmup}"
        f",min_intervals:{default.min_intervals}"
    )
    assert key(sampling="on") == key(sampling=spelled)
    assert key(sampling="on") == key(sampling=default)


def test_payload_is_json_canonical():
    """The payload serializes identically regardless of insertion order."""
    payload = cell_payload(BASE, M1.name, M1.benchmarks, TINY, 42)
    shuffled = json.loads(canonical_json(payload))
    assert canonical_json(shuffled) == canonical_json(payload)


# ----------------------------------------------------------------------
# Sensitivity: anything that changes output changes the key


def test_key_changes_with_config_knobs():
    assert key(config=small_config("base", rob_size=128)) != key()
    assert key(config=small_config("base", memory_bus="tsv8")) != key()


def test_key_changes_with_config_name():
    """The RAS PRNG seeds from the config *name*: renames must miss."""
    assert key(config=small_config("renamed")) != key()


def test_key_changes_with_mix_name():
    assert key(mix_name="M1-alias") != key()


def test_key_changes_with_benchmarks():
    assert key(benchmarks=MIXES["M3"].benchmarks) != key()


def test_key_changes_with_seed():
    assert key(seed=43) != key()


def test_key_changes_with_instruction_budgets():
    assert key(scale=ExperimentScale("tiny", 400, 1000)) != key()
    assert key(scale=ExperimentScale("tiny", 300, 2000)) != key()


def test_key_changes_with_checkers_on_off_and_subset():
    assert key(checkers="all") != key()
    assert key(checkers="mshr") != key(checkers="all")
    assert key(checkers="mshr") != key()


def test_key_changes_with_sampling():
    assert key(sampling="on") != key()
    assert key(sampling="detailed:600,warmup:2000") != key(sampling="on")


def test_key_changes_with_ras_config():
    quiet = dataclasses.replace(BASE, ras=RasConfig(transient_rate=1e-4))
    noisy = dataclasses.replace(BASE, ras=RasConfig(transient_rate=1e-3))
    assert key(config=quiet) != key()
    assert key(config=quiet) != key(config=noisy)


def test_config_dict_round_trip_with_ras():
    config = dataclasses.replace(BASE, ras=RasConfig(transient_rate=1e-4))
    assert config_from_dict(config_to_dict(config)) == config
    assert key(config=config_from_dict(config_to_dict(config))) == key(
        config=config
    )
