"""HTTP front end: submission, polling, results, error statuses."""

import dataclasses
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.service.http import ServiceServer, parse_sweep_request
from repro.service.keys import scale_to_dict
from repro.service.queue import SweepSpec
from repro.service.service import SweepService

from .conftest import TINY


@pytest.fixture()
def server(tmp_path, fast_policy):
    service = SweepService(tmp_path, fast_policy)
    srv = ServiceServer(service, port=0)
    srv.start()
    yield srv
    srv.stop()


def get(server, path, expect=200):
    try:
        with urllib.request.urlopen(server.url + path, timeout=30) as response:
            assert response.status == expect
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        assert error.code == expect, error.read().decode()
        return json.loads(error.read() or b"{}"), error


def post(server, path, body, expect):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == expect
            return json.loads(response.read()), None
    except urllib.error.HTTPError as error:
        assert error.code == expect, error.read().decode()
        return json.loads(error.read() or b"{}"), error


def wait_for_completion(server, job_id, deadline=120.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        status = get(server, f"/sweeps/{job_id}")
        if status["state"] == "completed":
            return status
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} did not complete in {deadline}s")


def test_full_form_submission_round_trip(server, one_cell_spec):
    payload, _ = post(server, "/sweeps", one_cell_spec.to_dict(), expect=202)
    job_id = payload["job_id"]
    status = wait_for_completion(server, job_id)
    assert status["cells_done"] == 1 and status["cells_failed"] == 0

    result = get(server, f"/sweeps/{job_id}/result")
    assert result["complete"] is True
    assert result["provenance"] == {"base/M1": "simulated"}
    (cell,) = result["table"]["cells"]
    assert cell["config"] == "base" and cell["mix"] == "M1"
    assert cell["result"]["total_cycles"] > 0

    listing = get(server, "/sweeps")
    assert [j["job_id"] for j in listing["jobs"]] == [job_id]


def test_compact_form_uses_registered_names(server):
    body = {"configs": ["2d"], "mixes": ["M1"], "scale": scale_to_dict(TINY)}
    payload, _ = post(server, "/sweeps", body, expect=202)
    wait_for_completion(server, payload["job_id"])
    result = get(server, f"/sweeps/{payload['job_id']}/result")
    # Registry key "2d" resolves to the config's own display name "2D".
    assert result["provenance"] == {"2D/M1": "simulated"}


def test_healthz_and_stats(server):
    assert get(server, "/healthz") == {"ok": True}
    stats = get(server, "/stats")
    assert set(stats) >= {"service", "cache", "supervisor", "breaker", "queue"}


def test_bad_request_bodies_get_400(server):
    _, error = post(server, "/sweeps", {"configs": ["2d"]}, expect=400)
    assert error is not None
    _, error = post(
        server, "/sweeps",
        {"configs": ["no-such-config"], "mixes": ["M1"]},
        expect=400,
    )
    assert error is not None


def test_unknown_routes_and_jobs_get_404(server):
    get(server, "/nope", expect=404)
    get(server, "/sweeps/job-9999-cafecafecafe", expect=404)
    get(server, "/sweeps/job-9999-cafecafecafe/result", expect=404)
    post(server, "/nope", {}, expect=404)


def test_overload_returns_503_with_retry_after(tmp_path, fast_policy, tiny_spec):
    policy = dataclasses.replace(fast_policy, max_pending_cells=4)
    service = SweepService(tmp_path, policy)
    server = ServiceServer(service, port=0)
    # Listener only, no executor: nothing drains the queue, so the
    # second submission must hit the admission bound.
    import threading

    listener = threading.Thread(target=server.httpd.serve_forever, daemon=True)
    listener.start()
    try:
        post(server, "/sweeps", tiny_spec.to_dict(), expect=202)
        payload, error = post(
            server, "/sweeps", tiny_spec.to_dict(), expect=503
        )
        assert error is not None
        assert error.headers["Retry-After"] == "30"
        assert payload.get("retry_after") == 30
    finally:
        server.httpd.shutdown()
        server.httpd.server_close()
        service.close()


def test_parse_rejects_unknown_mix():
    with pytest.raises(ValueError, match="unknown mix names"):
        parse_sweep_request(
            {"configs": ["2d"], "mixes": ["M99"], "scale": "smoke"}
        )


def test_parse_full_form_matches_spec(one_cell_spec):
    assert parse_sweep_request(one_cell_spec.to_dict()) == one_cell_spec
