"""End-to-end SweepService: cache hits, crash recovery, degradation."""

import dataclasses

import pytest

from repro.common.errors import InjectedServiceCrash, ServiceOverloadError
from repro.experiments import faults
from repro.experiments.faults import FaultSpec, ServiceFaultSpec
from repro.service.cache import ResultCache
from repro.service.chaos import (
    cache_entry_paths,
    corrupt_cache_entry,
    result_fingerprint,
)
from repro.service.service import SweepService

from .conftest import small_config


def run_sweep(root, policy, spec, job_id=None):
    """Open a service, run one sweep (or resume), return (result, stats)."""
    with SweepService(root, policy) as service:
        if job_id is None:
            job_id = service.submit(spec)
        service.process()
        return service.result(job_id), service.stats()


def test_sweep_completes_with_full_provenance(tmp_path, fast_policy, tiny_spec):
    result, stats = run_sweep(tmp_path, fast_policy, tiny_spec)
    assert result.complete and result.state == "completed"
    assert len(result.table.cells) == 4 and not result.table.failures
    assert set(result.provenance.values()) == {"simulated"}
    assert result.notes == []
    assert stats["service"]["cells_simulated"] == 4
    assert stats["service"]["cells_from_cache"] == 0


def test_resubmit_is_all_cache_and_bit_identical(tmp_path, fast_policy, tiny_spec):
    first, _ = run_sweep(tmp_path, fast_policy, tiny_spec)
    second, stats = run_sweep(tmp_path, fast_policy, tiny_spec)
    assert stats["service"]["cells_simulated"] == 0
    assert stats["service"]["cells_from_cache"] == 4
    assert set(second.provenance.values()) == {"cache"}
    assert result_fingerprint(second) == result_fingerprint(first)


def test_cache_is_shared_across_overlapping_sweeps(
    tmp_path, fast_policy, tiny_spec, one_cell_spec
):
    run_sweep(tmp_path, fast_policy, one_cell_spec)
    _, stats = run_sweep(tmp_path, fast_policy, tiny_spec)
    # (base, M1) overlaps; only the other 3 cells simulate.
    assert stats["service"]["cells_from_cache"] == 1
    assert stats["service"]["cells_simulated"] == 3


def test_crash_mid_sweep_resumes_bit_identical(tmp_path, fast_policy, tiny_spec):
    reference, _ = run_sweep(tmp_path / "ref", fast_policy, tiny_spec)

    # One worker → cells journal in submission order → the crash lands
    # deterministically after the second of four cells.
    policy = dataclasses.replace(fast_policy, workers=1)
    faults.install_service(ServiceFaultSpec("crash-service", "base", "M3", times=1))
    service = SweepService(tmp_path / "svc", policy)
    job_id = service.submit(tiny_spec)
    with pytest.raises(InjectedServiceCrash):
        service.process()
    done_before = len(service.queue.jobs[job_id].outcomes)
    service.close()
    assert 0 < done_before < 4  # genuinely interrupted mid-sweep
    faults.clear_service()

    resumed, stats = run_sweep(tmp_path / "svc", policy, tiny_spec, job_id)
    assert resumed.complete
    assert "resumed from its journal" in " ".join(resumed.notes)
    # Only the cells the crash cut off run again; journaled ones are kept.
    total = (
        stats["service"]["cells_simulated"]
        + stats["service"]["cells_from_cache"]
    )
    assert total == 4 - done_before
    assert result_fingerprint(resumed) == result_fingerprint(reference)


def test_corrupted_cache_entry_recomputed_never_served(
    tmp_path, fast_policy, tiny_spec
):
    first, _ = run_sweep(tmp_path, fast_policy, tiny_spec)
    corrupt_cache_entry(ResultCache(tmp_path / "cache"))

    second, stats = run_sweep(tmp_path, fast_policy, tiny_spec)
    assert second.complete
    assert stats["cache"]["corrupt_quarantined"] == 1
    assert stats["service"]["cells_simulated"] == 1  # only the bad one
    assert stats["service"]["cells_from_cache"] == 3
    assert result_fingerprint(second) == result_fingerprint(first)


def test_failed_cells_degrade_to_partial_table(tmp_path, fast_policy, tiny_spec):
    policy = dataclasses.replace(fast_policy, retries=0)
    faults.install(FaultSpec("raise", "base", "M1", times=-1))
    result, stats = run_sweep(tmp_path, policy, tiny_spec)
    assert not result.complete and result.state == "completed"
    assert len(result.table.cells) == 3  # the healthy cells survive
    assert result.provenance[("base", "M1")] == "failed"
    failure = result.table.failures[("base", "M1")]
    assert failure.error_type == "InjectedFault"
    assert any("unavailable" in note for note in result.notes)
    assert stats["service"]["cells_failed"] == 1


def test_pending_cells_reported_before_processing(
    tmp_path, fast_policy, tiny_spec
):
    with SweepService(tmp_path, fast_policy) as service:
        job_id = service.submit(tiny_spec)
        result = service.result(job_id)
        assert not result.complete and result.state == "queued"
        assert set(result.provenance.values()) == {"pending"}
        assert any("not yet run" in note for note in result.notes)
        status = service.status(job_id)
        assert status["cells_total"] == 4 and status["cells_done"] == 0


def test_admission_control_rejects_when_full(tmp_path, fast_policy, tiny_spec):
    policy = dataclasses.replace(fast_policy, max_pending_cells=4)
    with SweepService(tmp_path, policy) as service:
        service.submit(tiny_spec)
        with pytest.raises(ServiceOverloadError):
            service.submit(tiny_spec)


def test_lost_cache_entry_degrades_not_garbage(tmp_path, fast_policy, tiny_spec):
    """Journal says done, entry deleted after the fact: report, don't lie."""
    with SweepService(tmp_path, fast_policy) as service:
        job_id = service.submit(tiny_spec)
        service.process()
    for path in cache_entry_paths(ResultCache(tmp_path / "cache")):
        path.unlink()
    with SweepService(tmp_path, fast_policy) as service:
        result = service.result(job_id)
    assert not result.complete
    assert set(result.provenance.values()) == {"lost"}
    assert all(
        f.error_type == "CacheEntryLost" for f in result.table.failures.values()
    )
    assert any("lost to cache corruption" in note for note in result.notes)


def test_unknown_job_raises(tmp_path, fast_policy):
    with SweepService(tmp_path, fast_policy) as service:
        with pytest.raises(KeyError):
            service.status("job-9999-cafecafecafe")
        with pytest.raises(KeyError):
            service.result("job-9999-cafecafecafe")
        with pytest.raises(KeyError):
            service.process("job-9999-cafecafecafe")


def test_config_knob_change_misses_cache(tmp_path, fast_policy, one_cell_spec):
    run_sweep(tmp_path, fast_policy, one_cell_spec)
    tweaked = dataclasses.replace(
        one_cell_spec, configs=(small_config("base", rob_size=128),)
    )
    _, stats = run_sweep(tmp_path, fast_policy, tweaked)
    assert stats["service"]["cells_simulated"] == 1
    assert stats["service"]["cells_from_cache"] == 0
