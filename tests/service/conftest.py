"""Shared fixtures for the sweep-service tests.

Everything runs at a tiny instruction budget (300 warmup / 1000
measured) so the whole suite, forked workers included, stays in CI
territory.  Fault state is cleared around every test — a leaked fault
spec would poison unrelated tests in the same process.
"""

import pytest

from repro.common.units import MIB
from repro.experiments import faults
from repro.service.queue import SweepSpec
from repro.service.supervisor import ServicePolicy
from repro.system.config import config_3d_fast
from repro.system.machine import CoreResult, MachineResult
from repro.system.scale import ExperimentScale
from repro.workloads.mixes import MIXES

TINY = ExperimentScale("tiny", 300, 1000)


def small_config(name, **overrides):
    """A cut-down 3D config that simulates quickly at TINY scale."""
    return config_3d_fast().derive(
        name=name,
        l2_size=1 * MIB,
        l2_assoc=16,
        dram_capacity=64 * MIB,
        **overrides,
    )


def fabricated_result(mix_name, config_name="base", ipc=0.5):
    """A synthetic MachineResult for cache/queue tests (no simulation)."""
    return MachineResult(
        config_name=config_name,
        workload=mix_name,
        cores=[CoreResult("mcf", ipc, 1000.0, 1000.0 / ipc, 12.345)],
        total_cycles=int(1000.0 / ipc),
        l2_stats={"demand_accesses": 10.0, "demand_misses": 3.0},
        dram_row_hit_rate=0.515,
        mshr_avg_probes=1.25,
    )


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.clear()
    faults.clear_service()


@pytest.fixture()
def tiny_spec():
    """2 configs x 2 mixes at TINY scale (4 cells)."""
    return SweepSpec(
        configs=(
            small_config("base"),
            small_config("narrow", memory_bus="tsv8"),
        ),
        mixes=(MIXES["M1"], MIXES["M3"]),
        scale=TINY,
    )


@pytest.fixture()
def one_cell_spec():
    return SweepSpec(
        configs=(small_config("base"),), mixes=(MIXES["M1"],), scale=TINY
    )


@pytest.fixture()
def fast_policy():
    """Quick heartbeats/backoff so failure paths resolve in milliseconds."""
    return ServicePolicy(
        workers=2,
        heartbeat_interval=0.05,
        heartbeat_timeout=2.0,
        retries=1,
        backoff_base=0.01,
        backoff_max=0.05,
    )
