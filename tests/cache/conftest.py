"""Shared fakes for cache-layer tests."""

from collections import deque

import pytest

from repro.common.request import AccessType, MemoryRequest
from repro.engine import Engine


class FakeL2:
    """Records requests; completes them on demand (or after a delay)."""

    def __init__(self, engine, latency=None):
        self.engine = engine
        self.latency = latency
        self.requests = []

    def access(self, request):
        self.requests.append(request)
        if self.latency is not None:
            self.engine.schedule(
                self.latency, request.complete, self.engine.now + self.latency
            )

    def complete_next(self):
        request = self.requests.pop(0)
        request.complete(self.engine.now)
        return request


class FakeMemory:
    """MainMemory stand-in for L2 tests: bounded queue, manual completion."""

    class _Mapping:
        def __init__(self, num_mcs):
            self.num_mcs = num_mcs
            self.line_size = 64

        def mc_index(self, addr):
            return (addr >> 12) % self.num_mcs

    def __init__(self, engine, num_mcs=1, capacity=1000, latency=None):
        self.engine = engine
        self.mapping = self._Mapping(num_mcs)
        self.capacity = capacity
        self.latency = latency
        self.queued = []
        self.waiters = deque()

    @property
    def num_mcs(self):
        return self.mapping.num_mcs

    @property
    def line_size(self):
        return 64

    def enqueue(self, request):
        if len(self.queued) >= self.capacity:
            return False
        self.queued.append(request)
        if self.latency is not None:
            self.engine.schedule(
                self.latency, self._auto_complete, request
            )
        return True

    def _auto_complete(self, request):
        if request in self.queued:
            self.queued.remove(request)
            request.complete(self.engine.now)
            self._wake()

    def wait_for_space(self, addr, callback):
        self.waiters.append(callback)

    def complete_next(self):
        request = self.queued.pop(0)
        request.complete(self.engine.now)
        self._wake()
        return request

    def _wake(self):
        while self.waiters and len(self.queued) < self.capacity:
            self.waiters.popleft()()


@pytest.fixture()
def engine():
    return Engine()


def make_read(addr, core_id=0, pc=0, callback=None, created_at=0):
    return MemoryRequest(
        addr, AccessType.READ, core_id=core_id, pc=pc,
        created_at=created_at, callback=callback,
    )
