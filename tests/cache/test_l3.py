"""Unit tests for the stacked L3 cache."""

import pytest

from repro.cache.array import CacheArray
from repro.cache.l3 import StackedL3
from repro.common.request import AccessType, MemoryRequest

from .conftest import FakeMemory, make_read


def _l3(engine, memory=None, latency=25, size=64 * 1024, assoc=8):
    memory = memory if memory is not None else FakeMemory(engine)
    l3 = StackedL3(
        engine, CacheArray(size, assoc, 64), memory, latency=latency
    )
    return l3, memory


def test_hit_completes_after_latency(engine):
    l3, memory = _l3(engine)
    l3.array.fill(0x1000)
    done = []
    l3.enqueue(make_read(0x1000, callback=done.append))
    engine.run()
    assert done[0].completed_at == 25
    assert not memory.queued


def test_miss_fetches_from_memory_and_fills(engine):
    l3, memory = _l3(engine)
    done = []
    l3.enqueue(make_read(0x2000, callback=done.append))
    engine.run()
    assert len(memory.queued) == 1
    memory.complete_next()
    engine.run()
    assert done
    assert l3.array.probe(0x2000)
    assert not l3._inflight


def test_inflight_misses_merge(engine):
    l3, memory = _l3(engine)
    done = []
    l3.enqueue(make_read(0x2000, callback=done.append))
    l3.enqueue(make_read(0x2008, callback=done.append))
    engine.run()
    assert len(memory.queued) == 1
    assert l3.stats.get("merges") == 1
    memory.complete_next()
    engine.run()
    assert len(done) == 2


def test_writeback_hit_dirties_line(engine):
    l3, memory = _l3(engine)
    l3.array.fill(0x3000)
    wb = MemoryRequest(0x3000, AccessType.WRITEBACK)
    l3.enqueue(wb)
    engine.run()
    assert wb.completed_at is not None
    assert not memory.queued
    assert l3.array.invalidate(0x3000) is True


def test_writeback_miss_forwards(engine):
    l3, memory = _l3(engine)
    wb = MemoryRequest(0x3000, AccessType.WRITEBACK)
    l3.enqueue(wb)
    engine.run()
    assert len(memory.queued) == 1
    assert memory.queued[0].access is AccessType.WRITEBACK


def test_dirty_victim_written_back(engine):
    l3, memory = _l3(engine, size=8 * 64, assoc=1)  # 8 direct-mapped sets
    l3.array.fill(0, dirty=True)
    l3.enqueue(make_read(8 * 64))  # same set, evicts line 0
    engine.run()
    memory.complete_next()  # the fill
    engine.run()
    wbs = [r for r in memory.queued if r.access is AccessType.WRITEBACK]
    assert [w.addr for w in wbs] == [0]
    assert l3.stats.get("dirty_evictions") == 1


def test_mrq_backpressure_retries(engine):
    memory = FakeMemory(engine, capacity=1)
    l3, _ = _l3(engine, memory=memory)
    l3.enqueue(make_read(0x1000))
    l3.enqueue(make_read(0x2000))
    engine.run()
    assert l3.stats.get("mrq_full_retries") >= 1
    memory.complete_next()
    engine.run()
    memory.complete_next()
    engine.run()
    assert not l3._inflight


def test_hit_rate(engine):
    l3, memory = _l3(engine)
    l3.array.fill(0x0)
    l3.enqueue(make_read(0x0))
    l3.enqueue(make_read(0x4000))
    engine.run()
    assert l3.hit_rate() == 0.5


def test_latency_validation(engine):
    with pytest.raises(ValueError):
        _l3(engine, latency=0)


def test_machine_integration_stacked_memory_beats_stacked_cache():
    """The paper's thesis, run as an experiment: using the 3D stack for
    a big L3 cache helps a bandwidth-bound 2D system (it filters
    re-reference traffic off the FSB), but re-architected stacked DRAM
    (3D-fast) beats the stacked cache decisively on streams, which have
    no reuse a cache can exploit."""
    from repro.common.units import MIB
    from repro.system.config import config_2d, config_3d_fast
    from repro.system.machine import Machine

    shrink = dict(l2_size=1 * MIB, l2_assoc=16, dram_capacity=64 * MIB)
    flat = config_2d().derive(**shrink)
    stacked_cache = flat.derive(l3_enabled=True, l3_size=16 * MIB)
    stacked_memory = config_3d_fast().derive(**shrink)
    results = {}
    machines = {}
    for config in (flat, stacked_cache, stacked_memory):
        machine = Machine(config, ["S.copy"] * 4)
        results[config.name + str(config.l3_enabled)] = machine.run(
            warmup_instructions=2_000, measure_instructions=6_000
        ).hmipc
        machines[config.name + str(config.l3_enabled)] = machine
    base = results["2DFalse"]
    cache_hmipc = results["2DTrue"]
    memory_hmipc = results["3D-fastFalse"]
    l3 = machines["2DTrue"].l3
    assert l3 is not None and l3.stats.get("accesses") > 0
    # Streams carry no real reuse: the L3 hit rate stays low (residual
    # hits are prefetcher-duplicated fetches, not workload locality).
    assert l3.hit_rate() < 0.5
    # Stacked cache helps the FSB-bound baseline somewhat...
    assert cache_hmipc > base * 0.95
    # ...but stacked, re-architected memory wins decisively (Section 6).
    assert memory_hmipc > cache_hmipc * 1.3
