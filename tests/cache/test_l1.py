"""Unit tests for the L1 data cache (against a fake L2)."""

from repro.cache.array import CacheArray
from repro.cache.l1 import L1Cache
from repro.cache.prefetch import CompositePrefetcher, NextLinePrefetcher
from repro.common.request import AccessType, MemoryRequest
from repro.mshr.conventional import ConventionalMshr

from .conftest import FakeL2, make_read


def _l1(engine, l2=None, mshr_entries=8, prefetcher=None, latency=3):
    l2 = l2 if l2 is not None else FakeL2(engine)
    return (
        L1Cache(
            engine,
            core_id=0,
            array=CacheArray(4 * 1024, 4, 64),
            mshr=ConventionalMshr(mshr_entries),
            l2=l2,
            latency=latency,
            prefetcher=prefetcher,
        ),
        l2,
    )


def test_hit_completes_after_latency(engine):
    l1, l2 = _l1(engine)
    l1.array.fill(0x100)
    done = []
    assert l1.access(make_read(0x100, callback=done.append))
    engine.run()
    assert done[0].completed_at == 3
    assert not l2.requests


def test_miss_fetches_line_from_l2(engine):
    l1, l2 = _l1(engine)
    done = []
    assert l1.access(make_read(0x123, callback=done.append))
    engine.run()
    assert len(l2.requests) == 1
    fetch = l2.requests[0]
    assert fetch.addr == 0x100  # line-aligned
    assert fetch.access is AccessType.READ
    assert not done
    l2.complete_next()
    assert done and done[0].completed_at == engine.now
    # The line is now resident.
    assert l1.array.probe(0x100)


def test_secondary_miss_merges(engine):
    l1, l2 = _l1(engine)
    done = []
    l1.access(make_read(0x100, callback=done.append))
    l1.access(make_read(0x108, callback=done.append))
    engine.run()
    assert len(l2.requests) == 1  # merged, single fetch
    l2.complete_next()
    assert len(done) == 2


def test_mshr_full_rejects_and_wakes(engine):
    l1, l2 = _l1(engine, mshr_entries=1)
    assert l1.access(make_read(0x1000))
    assert not l1.access(make_read(0x2000))
    woken = []
    l1.on_mshr_free(lambda: woken.append(engine.now))
    engine.run()
    l2.complete_next()
    assert woken


def test_write_miss_is_rfo_and_dirties_line(engine):
    l1, l2 = _l1(engine)
    store = MemoryRequest(0x200, AccessType.WRITE)
    assert l1.access(store)
    engine.run()
    assert l2.requests[0].access is AccessType.READ  # fetch-for-ownership
    l2.complete_next()
    # Evicting the line must produce a writeback.
    victim = l1.array.invalidate(0x200)
    assert victim is True  # dirty


def test_write_hit_marks_dirty(engine):
    l1, _ = _l1(engine)
    l1.array.fill(0x100)
    assert l1.access(MemoryRequest(0x108, AccessType.WRITE))
    assert l1.array.invalidate(0x100) is True


def test_dirty_eviction_sends_writeback_to_l2(engine):
    l1, l2 = _l1(engine)
    array = l1.array  # 4 KiB, 4-way, 16 sets: set 0 holds lines k*1024
    # Fill set 0 with dirty lines, then force an eviction via a fetch.
    for i in range(4):
        l1.access(MemoryRequest(i * 1024, AccessType.WRITE))
        engine.run()
        l2.complete_next()
    l1.access(make_read(4 * 1024))
    engine.run()
    l2.complete_next()  # completes the fetch; eviction happens at fill
    writebacks = [r for r in l2.requests if r.access is AccessType.WRITEBACK]
    assert len(writebacks) == 1
    assert writebacks[0].addr == 0


def test_miss_rate(engine):
    l1, l2 = _l1(engine)
    l1.array.fill(0x0)
    l1.access(make_read(0x0))
    l1.access(make_read(0x1000))
    engine.run()
    assert l1.miss_rate() == 0.5


def test_l1_prefetcher_issues_prefetch_fetches(engine):
    prefetcher = CompositePrefetcher([NextLinePrefetcher(64)])
    l1, l2 = _l1(engine, prefetcher=prefetcher)
    l1.access(make_read(0x1000))
    engine.run()
    kinds = [r.access for r in l2.requests]
    assert AccessType.PREFETCH in kinds
    assert l1.stats.get("prefetches_issued") == 1


def test_prefetch_fill_does_not_complete_demand(engine):
    prefetcher = CompositePrefetcher([NextLinePrefetcher(64)])
    l1, l2 = _l1(engine, prefetcher=prefetcher)
    done = []
    l1.access(make_read(0x1000, callback=done.append))
    engine.run()
    # Complete the prefetch (second request) first.
    prefetch = [r for r in l2.requests if r.access is AccessType.PREFETCH][0]
    l2.requests.remove(prefetch)
    prefetch.complete(engine.now)
    assert not done
    l2.complete_next()
    assert done
    # The prefetched line is resident for a later access.
    assert l1.array.probe(0x1040)
