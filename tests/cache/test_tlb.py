"""Unit tests for the DTLB."""

import pytest

from repro.cache.tlb import Tlb


def test_first_touch_misses_then_hits():
    tlb = Tlb(entries=8, assoc=2, walk_penalty=30)
    assert tlb.access(0x1000) == 30
    assert tlb.access(0x1FFF) == 0  # same page
    assert tlb.access(0x2000) == 30  # next page


def test_capacity_and_lru_within_set():
    tlb = Tlb(entries=2, assoc=2, walk_penalty=10)
    tlb.access(0 * 4096)
    tlb.access(1 * 4096)  # both land in set 0 (1 set)
    tlb.access(0 * 4096)  # promote page 0
    tlb.access(2 * 4096)  # evicts page 1
    assert tlb.contains(0 * 4096)
    assert not tlb.contains(1 * 4096)
    assert tlb.contains(2 * 4096)


def test_sets_are_indexed_by_vpn():
    tlb = Tlb(entries=8, assoc=2)  # 4 sets
    tlb.access(0 * 4096)  # set 0
    tlb.access(1 * 4096)  # set 1
    assert tlb.contains(0)
    assert tlb.contains(4096)


def test_flush():
    tlb = Tlb()
    tlb.access(0x5000)
    assert tlb.contains(0x5000)
    tlb.flush()
    assert not tlb.contains(0x5000)
    assert tlb.stats.get("flushes") == 1


def test_miss_rate():
    tlb = Tlb()
    tlb.access(0x1000)
    tlb.access(0x1008)
    assert tlb.miss_rate() == 0.5


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(entries=0),
        dict(entries=7, assoc=4),
        dict(page_size=1000),
        dict(walk_penalty=-1),
    ],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        Tlb(**kwargs)


def test_core_pays_walk_penalty_once_per_page():
    """A page-local burst pays one walk; page changes pay again."""
    import itertools

    from repro.common.address import PageAllocator
    from repro.cpu.core import Core
    from repro.cpu.trace import TraceItem
    from repro.engine import Engine

    class InstantL1:
        def __init__(self, engine):
            self.engine = engine

        def access(self, request):
            self.engine.schedule(2, request.complete, self.engine.now + 2)
            return True

        def on_mshr_free(self, callback):
            raise AssertionError("never rejects")

    def run(walk_penalty):
        engine = Engine()
        tlb = Tlb(walk_penalty=walk_penalty)
        trace = (
            TraceItem(3, (i % 512) * 4096 + (i // 512) * 8, False, 0)
            for i in itertools.count()
        )  # one access per page: maximal TLB pressure over 512 pages
        core = Core(
            engine, 0, trace, InstantL1(engine), PageAllocator(), tlb=tlb
        )
        core.start()
        core.begin_measurement(4_000)
        engine.run(stop_when=lambda: core.frozen, until=10_000_000)
        return core.frozen_ipc, core.stats.value("tlb_walk_cycles")

    slow_ipc, slow_walks = run(walk_penalty=50)
    fast_ipc, fast_walks = run(walk_penalty=1)
    assert slow_walks > fast_walks
    assert slow_ipc < fast_ipc
