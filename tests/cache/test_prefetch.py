"""Unit tests for the next-line and IP-stride prefetchers."""

import pytest

from repro.cache.prefetch import (
    CompositePrefetcher,
    IpStridePrefetcher,
    NextLinePrefetcher,
)


def test_nextline_fires_only_on_misses():
    pf = NextLinePrefetcher(line_size=64)
    assert pf.observe(0x1000, pc=1, was_miss=False) == []
    assert pf.observe(0x1000, pc=1, was_miss=True) == [0x1040]


def test_nextline_degree():
    pf = NextLinePrefetcher(line_size=64, degree=3)
    assert pf.observe(0x1008, pc=1, was_miss=True) == [0x1040, 0x1080, 0x10C0]


def test_nextline_validation():
    with pytest.raises(ValueError):
        NextLinePrefetcher(degree=0)


def test_stride_needs_confirmations():
    pf = IpStridePrefetcher(line_size=64, threshold=2, degree=1)
    pc = 0x400
    assert pf.observe(0x0, pc, True) == []  # table fill
    assert pf.observe(0x100, pc, True) == []  # stride learned, conf 0
    assert pf.observe(0x200, pc, True) == []  # conf 1
    assert pf.observe(0x300, pc, True) == [0x400]  # conf 2 -> prefetch


def test_stride_prefetches_line_aligned_targets():
    pf = IpStridePrefetcher(line_size=64, threshold=1, degree=2)
    pc = 0x400
    pf.observe(0x0, pc, True)
    pf.observe(0x80, pc, True)
    candidates = pf.observe(0x100, pc, True)
    assert candidates == [0x180, 0x200]
    assert all(c % 64 == 0 for c in candidates)


def test_stride_change_resets_confidence():
    pf = IpStridePrefetcher(line_size=64, threshold=1, degree=1)
    pc = 0x400
    pf.observe(0x0, pc, True)
    pf.observe(0x100, pc, True)
    assert pf.observe(0x200, pc, True)  # trained on stride 0x100
    assert pf.observe(0x280, pc, True) == []  # stride changed -> retrain


def test_stride_ignores_zero_stride():
    pf = IpStridePrefetcher(line_size=64, threshold=1)
    pc = 0x400
    pf.observe(0x100, pc, True)
    pf.observe(0x100, pc, True)
    assert pf.observe(0x100, pc, True) == []


def test_stride_negative_strides_supported():
    pf = IpStridePrefetcher(line_size=64, threshold=1, degree=1)
    pc = 0x404
    pf.observe(0x1000, pc, True)
    pf.observe(0xF00, pc, True)
    candidates = pf.observe(0xE00, pc, True)
    assert candidates == [0xD00 & ~63]


def test_stride_table_is_pc_indexed():
    pf = IpStridePrefetcher(line_size=64, threshold=1, table_size=256)
    pf.observe(0x0, 0x400, True)
    pf.observe(0x100, 0x400, True)
    # A different PC does not inherit the stream.
    assert pf.observe(0x200, 0x408, True) == []


def test_composite_merges_and_dedups():
    composite = CompositePrefetcher(
        [NextLinePrefetcher(64), NextLinePrefetcher(64)]
    )
    assert composite.observe(0x1000, 1, True) == [0x1040]


def test_composite_empty_is_silent():
    assert CompositePrefetcher().observe(0x1000, 1, True) == []
