"""Unit tests for the replacement policies."""

import pytest

from repro.cache.array import CacheArray
from repro.cache.replacement import POLICIES, TreePlruPolicy, make_policy


def _array(policy, assoc=4, sets=2):
    return CacheArray(
        assoc * sets * 64, assoc, line_size=64, policy=policy, seed=7
    )


@pytest.mark.parametrize("policy", POLICIES)
def test_policies_maintain_capacity_invariant(policy):
    array = _array(policy, assoc=4, sets=2)
    for n in range(64):
        line = n * 64
        if not array.lookup(line):
            array.fill(line)
        assert array.resident_lines <= 8


@pytest.mark.parametrize("policy", POLICIES)
def test_victim_is_resident_and_frees_room(policy):
    array = _array(policy, assoc=2, sets=1)
    array.fill(0 * 64)
    array.fill(1 * 64)
    victim = array.fill(2 * 64)
    assert victim is not None
    assert victim[0] in (0, 64)
    assert array.probe(2 * 64)
    assert array.resident_lines == 2


@pytest.mark.parametrize("policy", POLICIES)
def test_invalidate_then_refill(policy):
    array = _array(policy, assoc=2, sets=1)
    array.fill(0)
    array.fill(64)
    array.invalidate(0)
    assert array.fill(128) is None  # room freed, no eviction needed


def test_lru_is_the_default_and_evicts_least_recent():
    array = CacheArray(2 * 64, 2, 64)
    assert array.policy.name == "lru"
    array.fill(0)
    array.fill(64)
    array.lookup(0)
    assert array.fill(128) == (64, False)


def test_plru_never_evicts_most_recent():
    array = _array("plru", assoc=4, sets=1)
    for n in range(4):
        array.fill(n * 64)
    array.lookup(3 * 64)  # most recently used
    victim = array.fill(4 * 64)
    assert victim[0] != 3 * 64


def test_plru_requires_power_of_two_assoc():
    with pytest.raises(ValueError):
        TreePlruPolicy(3)


def test_srrip_resists_scans():
    """A hot line survives a one-pass scan that would flush LRU."""
    hot = 0
    scan = [n * 64 for n in range(1, 8)]

    def run(policy):
        array = _array(policy, assoc=4, sets=1)
        array.fill(hot)
        for _ in range(4):
            array.lookup(hot)  # establish reuse
        for line in scan:  # scanning fill burst
            if not array.lookup(line):
                array.fill(line)
        return array.probe(hot)

    assert not run("lru")  # LRU flushes the hot line
    assert run("srrip")  # SRRIP keeps it


def test_random_is_deterministic_per_seed():
    def victims(seed):
        array = CacheArray(4 * 64, 4, 64, policy="random", seed=seed)
        out = []
        for n in range(12):
            victim = array.fill(n * 64)
            if victim:
                out.append(victim[0])
        return out

    assert victims(3) == victims(3)


def test_unknown_policy_raises():
    with pytest.raises(ValueError, match="lru"):
        make_policy("belady", 4)
