"""Unit and property tests for the set-associative cache array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.array import CacheArray


def _tiny(assoc=2, sets=4):
    return CacheArray(size_bytes=assoc * sets * 64, assoc=assoc, line_size=64)


def test_geometry():
    array = CacheArray(12 * 1024 * 1024, 24, 64)
    assert array.num_sets == 8192
    array = _tiny()
    assert array.num_sets == 4


def test_lookup_miss_then_fill_then_hit():
    array = _tiny()
    assert not array.lookup(0x100)
    assert array.fill(0x100) is None
    assert array.lookup(0x100)
    assert array.lookup(0x13F)  # same line, different offset


def test_lru_eviction_within_set():
    array = _tiny(assoc=2, sets=1)
    array.fill(0 * 64)
    array.fill(1 * 64)
    array.lookup(0 * 64)  # promote line 0
    victim = array.fill(2 * 64)
    assert victim == (1 * 64, False)


def test_dirty_victim_reported():
    array = _tiny(assoc=1, sets=1)
    array.fill(0)
    array.mark_dirty(0)
    victim = array.fill(64)
    assert victim == (0, True)


def test_mark_dirty_missing_line_raises():
    with pytest.raises(KeyError):
        _tiny().mark_dirty(0x40)


def test_probe_does_not_touch_lru():
    array = _tiny(assoc=2, sets=1)
    array.fill(0 * 64)
    array.fill(1 * 64)
    array.probe(0 * 64)  # must NOT promote
    victim = array.fill(2 * 64)
    assert victim == (0 * 64, False)


def test_fill_of_resident_line_merges_dirty():
    array = _tiny()
    array.fill(0x40, dirty=True)
    assert array.fill(0x40, dirty=False) is None
    victim_set = array.invalidate(0x40)
    assert victim_set is True  # stayed dirty


def test_invalidate():
    array = _tiny()
    assert array.invalidate(0x40) is None
    array.fill(0x40)
    assert array.invalidate(0x40) is False
    assert not array.lookup(0x40)


def test_sets_are_independent():
    array = _tiny(assoc=1, sets=4)
    for i in range(4):
        array.fill(i * 64)
    assert array.resident_lines == 4  # no evictions across sets


def test_validation():
    with pytest.raises(ValueError):
        CacheArray(1000, 3, 64)  # not divisible
    with pytest.raises(ValueError):
        CacheArray(0, 1, 64)
    with pytest.raises(ValueError):
        CacheArray(1024, 2, 63)


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=31), max_size=150))
def test_property_occupancy_never_exceeds_associativity(line_numbers):
    assoc, sets = 2, 4
    array = _tiny(assoc=assoc, sets=sets)
    resident = {}
    for n in line_numbers:
        line = n * 64
        if not array.lookup(line):
            array.fill(line)
        resident[line] = True
        assert array.resident_lines <= assoc * sets
    # Every line the array claims resident maps to <= assoc per set.
    per_set = {}
    for line in resident:
        if array.probe(line):
            per_set.setdefault(array.set_index(line), 0)
            per_set[array.set_index(line)] += 1
    assert all(count <= assoc for count in per_set.values())
