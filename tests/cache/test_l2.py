"""Unit tests for the banked L2 cache (against a fake memory system)."""

import pytest

from repro.cache.array import CacheArray
from repro.cache.l2 import BankedL2Cache
from repro.cache.prefetch import CompositePrefetcher, NextLinePrefetcher
from repro.common.request import AccessType, MemoryRequest
from repro.mshr.conventional import ConventionalMshr
from repro.mshr.vbf_mshr import VbfMshr

from .conftest import FakeMemory, make_read


def _l2(
    engine,
    memory=None,
    mshr_files=None,
    num_banks=4,
    interleave="page",
    prefetcher=None,
    mshr_latency=True,
):
    memory = memory if memory is not None else FakeMemory(engine)
    mshr_files = mshr_files if mshr_files is not None else [ConventionalMshr(8)]
    l2 = BankedL2Cache(
        engine,
        CacheArray(64 * 1024, 8, 64),
        memory,
        mshr_files,
        num_banks=num_banks,
        interleave=interleave,
        latency=9,
        routing_latency=2,
        prefetcher=prefetcher,
        mshr_latency_enabled=mshr_latency,
    )
    return l2, memory


def test_hit_latency(engine):
    l2, memory = _l2(engine)
    l2.array.fill(0x100)
    done = []
    l2.access(make_read(0x100, callback=done.append))
    engine.run()
    # routing (2) + tag (9) + routing back (2)
    assert done[0].completed_at == 13
    assert not memory.queued


def test_miss_goes_to_memory_and_fills(engine):
    l2, memory = _l2(engine)
    done = []
    l2.access(make_read(0x5000, callback=done.append))
    engine.run()
    assert len(memory.queued) == 1
    assert memory.queued[0].addr == 0x5000
    memory.complete_next()
    engine.run()
    assert done
    assert l2.array.probe(0x5000)
    # MSHR entry released.
    assert l2.mshr_occupancy() == 0


def test_secondary_miss_merges_into_mshr(engine):
    l2, memory = _l2(engine)
    done = []
    l2.access(make_read(0x5000, callback=done.append))
    l2.access(make_read(0x5040 - 0x40, callback=done.append))  # same line
    engine.run()
    assert len(memory.queued) == 1
    assert l2.stats.get("mshr_merges") == 1
    memory.complete_next()
    engine.run()
    assert len(done) == 2


def test_mshr_full_stalls_until_fill(engine):
    l2, memory = _l2(engine, mshr_files=[ConventionalMshr(1)])
    done = []
    l2.access(make_read(0x1000, callback=done.append))
    l2.access(make_read(0x2000, callback=done.append))
    engine.run()
    assert len(memory.queued) == 1  # second miss stalled
    assert l2.stats.get("mshr_stalls") == 1
    memory.complete_next()
    engine.run()
    assert len(memory.queued) == 1  # stalled miss released
    memory.complete_next()
    engine.run()
    assert len(done) == 2
    assert l2.stats.get("mshr_stall_cycles") > 0


def test_writeback_hit_marks_dirty_and_completes(engine):
    l2, memory = _l2(engine)
    l2.array.fill(0x3000)
    wb = MemoryRequest(0x3000, AccessType.WRITEBACK)
    l2.access(wb)
    engine.run()
    assert wb.completed_at is not None
    assert not memory.queued
    assert l2.array.invalidate(0x3000) is True


def test_writeback_miss_forwards_to_memory(engine):
    l2, memory = _l2(engine)
    wb = MemoryRequest(0x3000, AccessType.WRITEBACK)
    l2.access(wb)
    engine.run()
    assert wb.completed_at is not None  # posted
    assert len(memory.queued) == 1
    assert memory.queued[0].access is AccessType.WRITEBACK


def test_dirty_eviction_writes_back_to_memory(engine):
    l2, memory = _l2(engine)
    # 64 KiB 8-way -> 128 sets; lines k * (128*64) share set 0.
    stride = 128 * 64
    for i in range(8):
        l2.array.fill(i * stride, dirty=True)
    l2.access(make_read(8 * stride))
    engine.run()
    memory.complete_next()  # the fill
    engine.run()
    wbs = [r for r in memory.queued if r.access is AccessType.WRITEBACK]
    assert len(wbs) == 1
    assert wbs[0].addr == 0
    assert l2.stats.get("memory_writebacks") == 1


def test_bank_serialization_by_occupancy(engine):
    l2, memory = _l2(engine, num_banks=1)
    done = []
    l2.array.fill(0x000)
    l2.array.fill(0x040)
    l2.access(make_read(0x000, callback=done.append))
    l2.access(make_read(0x040, callback=done.append))
    engine.run()
    assert done[1].completed_at - done[0].completed_at == l2.bank_occupancy


def test_page_vs_line_interleave_routing():
    from repro.engine import Engine

    engine = Engine()
    page_l2, _ = _l2(engine, num_banks=4, interleave="page")
    line_l2, _ = _l2(engine, num_banks=4, interleave="line")
    # Same page, consecutive lines: one bank under page interleave,
    # different banks under line interleave.
    assert page_l2.bank_index(0x0) == page_l2.bank_index(0x40)
    assert line_l2.bank_index(0x0) != line_l2.bank_index(0x40)
    # Consecutive pages: different banks under page interleave.
    assert page_l2.bank_index(0x0) != page_l2.bank_index(0x1000)


def test_mshr_banks_align_with_mcs(engine):
    memory = FakeMemory(engine, num_mcs=2)
    files = [ConventionalMshr(4), ConventionalMshr(4)]
    l2, _ = _l2(engine, memory=memory, mshr_files=files)
    assert l2.mshr_bank_index(0x0000) == 0
    assert l2.mshr_bank_index(0x1000) == 1
    l2.access(make_read(0x0000))
    l2.access(make_read(0x1000))
    engine.run()
    assert files[0].occupancy == 1
    assert files[1].occupancy == 1


def test_per_core_demand_stats(engine):
    l2, memory = _l2(engine)
    l2.access(make_read(0x1000, core_id=2))
    engine.run()
    assert l2.stats.get("core2_demand_accesses") == 1
    assert l2.stats.get("core2_demand_misses") == 1
    prefetch = MemoryRequest(0x9000, AccessType.PREFETCH, core_id=2)
    l2.access(prefetch)
    engine.run()
    # Prefetches never count as demand.
    assert l2.stats.get("core2_demand_accesses") == 1


def test_prefetcher_issues_and_tracks_usefulness(engine):
    prefetcher = CompositePrefetcher([NextLinePrefetcher(64)])
    l2, memory = _l2(engine, prefetcher=prefetcher)
    l2.access(make_read(0x5000))
    engine.run()
    # Demand miss + its next-line prefetch both reached memory.
    assert len(memory.queued) == 2
    while memory.queued:
        memory.complete_next()
        engine.run()
    assert l2.stats.get("prefetches_issued") == 1
    assert l2.stats.get("prefetch_fills") == 1
    # A demand hit on the prefetched line counts it useful.
    l2.access(make_read(0x5040))
    engine.run()
    assert l2.stats.get("prefetch_useful") == 1


def test_demand_merging_into_prefetch_entry(engine):
    prefetcher = CompositePrefetcher([NextLinePrefetcher(64)])
    l2, memory = _l2(engine, prefetcher=prefetcher)
    l2.access(make_read(0x5000))
    engine.run()
    done = []
    l2.access(make_read(0x5040, callback=done.append))  # prefetch in flight
    engine.run()
    assert l2.stats.get("prefetch_partial_hits") == 1
    while memory.queued:
        memory.complete_next()
        engine.run()
    assert done


def test_mrq_full_retries(engine):
    memory = FakeMemory(engine, capacity=1)
    l2, _ = _l2(engine, memory=memory)
    l2.access(make_read(0x1000))
    l2.access(make_read(0x2000))
    engine.run()
    assert l2.stats.get("mrq_full_retries") >= 1
    memory.complete_next()
    engine.run()
    assert len(memory.queued) == 1  # retried request got in
    memory.complete_next()
    engine.run()
    assert l2.mshr_occupancy() == 0


def test_vbf_probe_latency_delays_memory_issue(engine):
    """With probe latency on, VBF search cost precedes the memory send."""
    fast_engine = engine
    memory_fast = FakeMemory(fast_engine)
    l2_fast, _ = _l2(
        fast_engine, memory=memory_fast,
        mshr_files=[VbfMshr(8)], mshr_latency=False,
    )
    from repro.engine import Engine

    slow_engine = Engine()
    memory_slow = FakeMemory(slow_engine)
    l2_slow, _ = _l2(
        slow_engine, memory=memory_slow,
        mshr_files=[VbfMshr(8)], mshr_latency=True,
    )
    l2_fast.access(make_read(0x1000))
    l2_slow.access(make_read(0x1000))
    fast_engine.run()
    slow_engine.run()
    assert len(memory_fast.queued) == len(memory_slow.queued) == 1
    assert memory_slow.queued[0].created_at >= memory_fast.queued[0].created_at


def test_validation():
    from repro.engine import Engine

    engine = Engine()
    memory = FakeMemory(engine)
    with pytest.raises(ValueError):
        BankedL2Cache(
            engine, CacheArray(64 * 1024, 8, 64), memory,
            [ConventionalMshr(8)], interleave="diagonal",
        )


def test_inclusion_back_invalidates_l1_copies(engine):
    """L2 eviction recalls L1 copies; dirty L1 data reaches memory."""
    from repro.cache.l1 import L1Cache

    l2, memory = _l2(engine)
    l1 = L1Cache(
        engine, 0, CacheArray(4 * 1024, 4, 64), ConventionalMshr(8), l2
    )
    l2.register_upper_level(l1)
    stride = 128 * 64  # L2 set-conflict stride (64 KiB, 8-way)
    # The L1 holds a dirty copy of line 0; the L2 copy is clean.
    l1.array.fill(0, dirty=True)
    for i in range(8):
        l2.array.fill(i * stride, dirty=False)
    # A new fill in the same L2 set evicts line 0 from the L2.
    l2.access(make_read(8 * stride))
    engine.run()
    memory.complete_next()
    engine.run()
    assert not l1.array.probe(0)  # recalled
    assert l1.stats.get("back_invalidations") == 1
    assert l2.stats.get("inclusion_dirty_recalls") == 1
    wbs = [r for r in memory.queued if r.access is AccessType.WRITEBACK]
    assert [w.addr for w in wbs] == [0]  # the dirty L1 data went down


def test_inclusion_clean_l1_copy_needs_no_writeback(engine):
    from repro.cache.l1 import L1Cache

    l2, memory = _l2(engine)
    l1 = L1Cache(
        engine, 0, CacheArray(4 * 1024, 4, 64), ConventionalMshr(8), l2
    )
    l2.register_upper_level(l1)
    stride = 128 * 64
    l1.array.fill(0, dirty=False)
    for i in range(8):
        l2.array.fill(i * stride, dirty=False)
    l2.access(make_read(8 * stride))
    engine.run()
    memory.complete_next()
    engine.run()
    assert not l1.array.probe(0)
    wbs = [r for r in memory.queued if r.access is AccessType.WRITEBACK]
    assert wbs == []
