"""Unit tests for the trace-driven core model (against a fake L1)."""

import itertools
from collections import deque

import pytest

from repro.common.address import PageAllocator
from repro.cpu.core import Core
from repro.cpu.trace import TraceItem
from repro.engine import Engine


class FakeL1:
    """Completes accesses after a fixed latency; can reject N times."""

    def __init__(self, engine, latency=5, reject_first=0):
        self.engine = engine
        self.latency = latency
        self.reject_remaining = reject_first
        self.accesses = []
        self._waiters = deque()

    def access(self, request):
        if self.reject_remaining > 0:
            self.reject_remaining -= 1
            return False
        self.accesses.append(request)
        done = self.engine.now + self.latency
        self.engine.schedule(self.latency, request.complete, done)
        return True

    def on_mshr_free(self, callback):
        # Wake after a cycle, like a freed MSHR entry would.
        self.engine.schedule(1, callback)


def _core(engine, trace, l1=None, base_cpi=0.5, rob=96, width=4):
    l1 = l1 or FakeL1(engine)
    core = Core(
        engine, 0, iter(trace), l1, PageAllocator(),
        base_cpi=base_cpi, rob_size=rob, width=width,
    )
    return core, l1


def _uniform_trace(gap, count=10_000, stride=64, write=False):
    return (
        TraceItem(gap, i * stride, write, 0x400) for i in itertools.count()
    )


def test_ipc_paced_by_base_cpi_when_memory_is_fast():
    engine = Engine()
    core, _ = _core(engine, _uniform_trace(gap=9), base_cpi=0.5)
    core.start()
    core.begin_measurement(10_000)
    engine.run(stop_when=lambda: core.frozen)
    # Memory latency (5 cycles) is negligible at gap 9; commit pacing at
    # 0.5 CPI dominates -> IPC ~2.
    assert core.frozen_ipc == pytest.approx(2.0, rel=0.05)


def test_higher_base_cpi_lowers_ipc():
    results = []
    for cpi in (0.5, 1.0):
        engine = Engine()
        core, _ = _core(engine, _uniform_trace(gap=9), base_cpi=cpi)
        core.start()
        core.begin_measurement(5_000)
        engine.run(stop_when=lambda: core.frozen)
        results.append(core.frozen_ipc)
    assert results[0] > 1.5 * results[1]


def test_slow_memory_lowers_ipc():
    results = []
    for latency in (5, 200):
        engine = Engine()
        core, _ = _core(
            engine, _uniform_trace(gap=9), l1=FakeL1(engine, latency=latency)
        )
        core.start()
        core.begin_measurement(5_000)
        engine.run(stop_when=lambda: core.frozen)
        results.append(core.frozen_ipc)
    assert results[1] < results[0] / 2


def test_rob_bounds_outstanding_refs():
    engine = Engine()
    l1 = FakeL1(engine, latency=10_000)  # nothing ever completes in time
    core, _ = _core(engine, _uniform_trace(gap=0), l1=l1, rob=16)
    core.start()
    engine.run(until=5_000)
    # gap 0 -> every instruction is a ref; at most rob_size refs can be
    # dispatched before the oldest blocks everything.
    assert len(l1.accesses) <= 16
    assert core.stats.get("rob_stalls") >= 1


def test_stores_do_not_block_commit():
    engine = Engine()
    l1 = FakeL1(engine, latency=10_000)
    core, _ = _core(
        engine, _uniform_trace(gap=9, write=True), l1=l1, rob=32
    )
    core.start()
    core.begin_measurement(2_000)
    engine.run(until=10_000, stop_when=lambda: core.frozen)
    # Stores commit from the store buffer; progress continues.
    assert core.committed >= 2_000


def test_l1_rejection_stalls_then_resumes():
    engine = Engine()
    l1 = FakeL1(engine, latency=5, reject_first=3)
    core, _ = _core(engine, _uniform_trace(gap=9), l1=l1)
    core.start()
    core.begin_measurement(1_000)
    engine.run(stop_when=lambda: core.frozen)
    assert core.frozen
    assert core.stats.get("l1_mshr_stalls") == 3


def test_freeze_keeps_core_running():
    engine = Engine()
    core, l1 = _core(engine, _uniform_trace(gap=9))
    core.start()
    core.begin_measurement(1_000)
    engine.run(stop_when=lambda: core.frozen)
    frozen_at = core.committed
    frozen_ipc = core.frozen_ipc
    engine.run(until=engine.now + 2_000)
    assert core.committed > frozen_at  # still executing
    assert core.frozen_ipc == frozen_ipc  # stats frozen
    assert core.stats.value("dispatched_refs") < core.stats.get(
        "dispatched_refs"
    )


def test_on_frozen_hook_fires_once():
    engine = Engine()
    core, _ = _core(engine, _uniform_trace(gap=9))
    calls = []
    core.on_frozen = calls.append
    core.start()
    core.begin_measurement(500)
    engine.run(until=50_000)
    assert calls == [core]


def test_measured_counters():
    engine = Engine()
    core, _ = _core(engine, _uniform_trace(gap=9))
    core.start()
    core.begin_measurement(1_000)
    engine.run(stop_when=lambda: core.frozen)
    instrs = core.stats.value("measured_instructions")
    cycles = core.stats.value("measured_cycles")
    assert instrs >= 1_000
    assert core.frozen_ipc == pytest.approx(instrs / cycles)


def test_ipc_live_before_freeze():
    engine = Engine()
    core, _ = _core(engine, _uniform_trace(gap=9))
    core.start()
    core.begin_measurement(100_000)
    engine.run(until=1_000)
    assert 0 < core.ipc <= 4


def test_validation():
    engine = Engine()
    with pytest.raises(ValueError):
        Core(engine, 0, iter([]), FakeL1(engine), PageAllocator(), width=0)
    with pytest.raises(ValueError):
        Core(engine, 0, iter([]), FakeL1(engine), PageAllocator(), base_cpi=0)
    core, _ = _core(engine, _uniform_trace(gap=1))
    with pytest.raises(ValueError):
        core.begin_measurement(0)


def test_watch_commit_fires_at_threshold():
    engine = Engine()
    core, _ = _core(engine, _uniform_trace(gap=3))
    seen = []

    def watched(c):
        seen.append((c.committed, engine.now))
        engine.request_stop()

    core.watch_commit(500, watched)
    core.start()
    engine.run()
    assert len(seen) == 1
    committed_at_fire, _ = seen[0]
    # Fires from inside the commit event that crosses the threshold —
    # at-or-just-past it (one commit batch is at most `width` wide).
    assert 500 <= committed_at_fire < 500 + core.width


def test_watch_commit_fires_immediately_when_already_past():
    engine = Engine()
    core, _ = _core(engine, _uniform_trace(gap=3))
    core.start()
    engine.run(until=5_000)
    already = core.committed
    assert already > 10
    seen = []
    core.watch_commit(10, seen.append)
    # Synchronous: no events needed.
    assert seen == [core]
    assert core.committed == already


def test_watch_commit_can_stop_the_run():
    """The warmup pattern: end a run via request_stop, no stop_when poll."""
    engine = Engine()
    core, _ = _core(engine, _uniform_trace(gap=3))
    core.watch_commit(300, lambda c: engine.request_stop())
    core.start()
    engine.run()
    assert 300 <= core.committed < 300 + core.width
