"""Unit tests for trace primitives (row and columnar forms)."""

import itertools

import pytest

from repro.cpu.trace import (
    BatchedTrace,
    TraceBatch,
    TraceItem,
    as_batched,
    batch_iter,
    instructions_per_item,
)

ITEMS = [
    TraceItem(0, 0x1000, False, 0x400),
    TraceItem(4, 0x1040, True, 0x404),
    TraceItem(2, 0x2000, False, 0x408),
    TraceItem(7, 0x2040, True, 0x40C),
    TraceItem(0, 0x3000, False, 0x410),
]


def test_trace_item_fields():
    item = TraceItem(gap=3, addr=0x1000, is_write=True, pc=0x400)
    assert item.gap == 3
    assert item.addr == 0x1000
    assert item.is_write
    assert item.pc == 0x400


def test_instructions_per_item():
    sample = [TraceItem(0, 0, False, 0), TraceItem(4, 0, False, 0)]
    # (0+1 + 4+1) / 2
    assert instructions_per_item(sample) == 3.0
    assert instructions_per_item([]) == 0.0


def test_instructions_per_item_accepts_any_iterable():
    # A generator (single-pass iterable) must work — the one-pass
    # contract means no len() or second traversal.
    gen = (TraceItem(g, 0, False, 0) for g in (1, 3))
    assert instructions_per_item(gen) == 3.0


def test_instructions_per_item_counts_batches():
    batch = batch_iter(ITEMS, size=len(ITEMS)).__next__()
    expected = sum(i.gap + 1 for i in ITEMS) / len(ITEMS)
    assert instructions_per_item([batch]) == expected
    # Mixed row items and batches accumulate into one mean.
    mixed = [ITEMS[0], batch]
    total = (ITEMS[0].gap + 1) + sum(i.gap + 1 for i in ITEMS)
    assert instructions_per_item(mixed) == total / (1 + len(ITEMS))


def test_trace_batch_columns_and_row_views():
    batch = TraceBatch(
        [i.gap for i in ITEMS],
        [i.addr for i in ITEMS],
        [1 if i.is_write else 0 for i in ITEMS],
        [i.pc for i in ITEMS],
    )
    assert len(batch) == len(ITEMS)
    assert list(batch) == ITEMS
    assert [batch.item(i) for i in range(len(ITEMS))] == ITEMS
    assert batch.instructions == sum(i.gap + 1 for i in ITEMS)


def test_trace_batch_rejects_ragged_columns():
    with pytest.raises(ValueError):
        TraceBatch([0, 1], [0x0], [0], [0x0])


def test_trace_batch_derived_columns():
    batch = batch_iter(ITEMS, size=len(ITEMS)).__next__()
    page_shift, line_shift, set_mask = 12, 6, 0x3F
    derived = batch.derived(page_shift, line_shift, set_mask)
    assert derived.vlines == [i.addr >> line_shift for i in ITEMS]
    assert derived.vpns == [i.addr >> page_shift for i in ITEMS]
    page_off_mask = (1 << page_shift) - 1 & ~((1 << line_shift) - 1)
    assert derived.line_offsets == [i.addr & page_off_mask for i in ITEMS]
    assert derived.sets == [v & set_mask for v in derived.vlines]
    # Cached per geometry: same key returns the same object.
    assert batch.derived(page_shift, line_shift, set_mask) is derived
    other = batch.derived(13, line_shift, set_mask)
    assert other is not derived


@pytest.mark.parametrize("size", [1, 2, 3, 1024])
def test_batch_iter_chunks_and_preserves_order(size):
    batches = list(batch_iter(ITEMS, size=size))
    assert [len(b) for b in batches[:-1]] == [size] * (len(batches) - 1)
    assert sum(len(b) for b in batches) == len(ITEMS)
    flattened = [item for b in batches for item in b]
    assert flattened == ITEMS


def test_batch_iter_rejects_bad_size():
    with pytest.raises(ValueError):
        next(batch_iter(ITEMS, size=0))


def test_batched_trace_row_interface_matches_source():
    trace = BatchedTrace(batch_iter(ITEMS, size=2))
    assert list(itertools.islice(trace, len(ITEMS))) == ITEMS
    with pytest.raises(StopIteration):
        next(trace)


def test_batched_trace_shared_cursor_mixes_views():
    trace = BatchedTrace(batch_iter(ITEMS, size=2))
    cursor = trace.cursor()
    # Row view consumes one item, then the cursor continues from there.
    assert next(trace) == ITEMS[0]
    assert cursor.next_item() == ITEMS[1]
    # Batch view: the cursor's position is mid-stream, not rewound.
    assert next(trace) == ITEMS[2]


def test_as_batched_is_idempotent():
    trace = as_batched(ITEMS, size=2)
    assert as_batched(trace) is trace
    assert list(itertools.islice(trace, len(ITEMS))) == ITEMS
