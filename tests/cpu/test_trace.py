"""Unit tests for trace primitives."""

from repro.cpu.trace import TraceItem, instructions_per_item


def test_trace_item_fields():
    item = TraceItem(gap=3, addr=0x1000, is_write=True, pc=0x400)
    assert item.gap == 3
    assert item.addr == 0x1000
    assert item.is_write
    assert item.pc == 0x400


def test_instructions_per_item():
    sample = [TraceItem(0, 0, False, 0), TraceItem(4, 0, False, 0)]
    # (0+1 + 4+1) / 2
    assert instructions_per_item(sample) == 3.0
    assert instructions_per_item([]) == 0.0
