"""Shadow-bank timing checker properties.

Two directions, both driven by the seeded generators in
``tests.strategies``:

* soundness — a bank running the *same* timing as the shadow never
  trips the checker, for random legal access sequences over random
  legal timings;
* completeness — shrinking **any single** t-parameter (an illegal
  speedup) is caught on a conflict-heavy sequence, and the violation
  names a constraint.
"""

import pytest

from repro.common.errors import CheckViolation
from repro.dram.bank import Bank
from repro.dram.refresh import RefreshSchedule
from repro.dram.timing import ddr2_commodity, true_3d
from repro.validate import ShadowBank

from tests.strategies import (
    TIMING_PARAMS,
    access_sequence,
    conflict_stress_sequence,
    random_timing,
    shrink_timing,
    timing_mutations,
)


def _drive(bank, shadow, sequence):
    """Feed one access sequence through a bank and its shadow."""
    time = 0
    for gap, row, is_write in sequence:
        time += gap
        data_time, hit = bank.access(time, row, is_write)
        shadow.observe(time, row, is_write, data_time, hit)


@pytest.mark.parametrize("seed", range(10))
def test_legal_sequences_never_trip(seed):
    timing = random_timing(seed)
    entries = (seed % 3) + 1
    shadow = ShadowBank(timing, refresh_phase=0, row_buffer_entries=entries)
    bank = Bank(timing, RefreshSchedule(timing, phase=0), entries)
    _drive(bank, shadow, access_sequence(seed, length=120))
    assert shadow.accesses == 120


@pytest.mark.parametrize("seed", range(4))
def test_legal_conflict_stress_never_trips(seed):
    # The adversarial sequence used for mutation testing must itself be
    # clean under matching timings (no false positives).
    timing = ddr2_commodity()
    shadow = ShadowBank(timing, refresh_phase=0, row_buffer_entries=1)
    bank = Bank(timing, RefreshSchedule(timing, phase=0), 1)
    _drive(bank, shadow, conflict_stress_sequence(seed))


@pytest.mark.parametrize("param", TIMING_PARAMS)
def test_each_shrunk_parameter_is_caught(param):
    timing = ddr2_commodity()
    mutant = shrink_timing(timing, param)
    shadow = ShadowBank(timing, refresh_phase=0, row_buffer_entries=1)
    bank = Bank(mutant, RefreshSchedule(mutant, phase=0), 1)
    with pytest.raises(CheckViolation) as excinfo:
        _drive(bank, shadow, conflict_stress_sequence(0, length=120))
    violation = excinfo.value
    assert violation.checker == "dram-timing"
    assert violation.constraint, "violation must name a constraint"
    assert violation.state["bank"] == shadow.label


@pytest.mark.parametrize("seed", range(3))
def test_all_mutations_of_true_3d_are_caught(seed):
    # The aggressive preset has the tightest margins; every constructible
    # single-parameter shrink must still be detected.
    timing = true_3d()
    for param, mutant in timing_mutations(timing):
        shadow = ShadowBank(timing, refresh_phase=0, row_buffer_entries=1)
        bank = Bank(mutant, RefreshSchedule(mutant, phase=0), 1)
        with pytest.raises(CheckViolation):
            _drive(bank, shadow, conflict_stress_sequence(seed, length=120))


def test_row_buffer_divergence_is_named():
    # Feeding the shadow a wrong hit flag is diagnosed as row-buffer
    # state divergence, not a timing inequality.
    timing = ddr2_commodity()
    shadow = ShadowBank(timing, refresh_phase=0, row_buffer_entries=1)
    bank = Bank(timing, RefreshSchedule(timing, phase=0), 1)
    data_time, hit = bank.access(0, 3, False)
    with pytest.raises(CheckViolation) as excinfo:
        shadow.observe(0, 3, False, data_time, not hit)
    assert "row-buffer" in excinfo.value.constraint


def test_slower_than_reference_is_model_divergence():
    timing = ddr2_commodity()
    shadow = ShadowBank(timing, refresh_phase=0, row_buffer_entries=1)
    bank = Bank(timing, RefreshSchedule(timing, phase=0), 1)
    data_time, hit = bank.access(0, 1, False)
    with pytest.raises(CheckViolation) as excinfo:
        shadow.observe(0, 1, False, data_time + 7, hit)
    assert "model equality" in excinfo.value.constraint
