"""Unit and integration tests for the runtime invariant checkers."""

from types import SimpleNamespace

import pytest

from repro.common.errors import CheckViolation
from repro.experiments import faults
from repro.mshr.factory import make_mshr
from repro.system.config import config_2d, config_3d_fast
from repro.system.machine import Machine
from repro.validate import (
    CHECKER_NAMES,
    CheckerSet,
    MshrConservationChecker,
    QueueConservationChecker,
    resolve_checker_names,
)
from repro.validate.hooks import _wrap_mshr_file

TINY = dict(warmup_instructions=300, measure_instructions=1000)


# ----------------------------------------------------------------------
# Spec resolution
# ----------------------------------------------------------------------
def test_resolve_checker_names_forms():
    assert resolve_checker_names(None) == ()
    assert resolve_checker_names(False) == ()
    assert resolve_checker_names("") == ()
    assert resolve_checker_names(True) == CHECKER_NAMES
    assert resolve_checker_names("all") == CHECKER_NAMES
    assert resolve_checker_names("mshr") == ("mshr",)
    # Canonical order regardless of input order; duplicates dropped.
    assert resolve_checker_names("queue, dram-timing,queue") == (
        "dram-timing",
        "queue",
    )
    assert resolve_checker_names(["queue", "mshr"]) == ("mshr", "queue")


def test_resolve_checker_names_rejects_unknown():
    with pytest.raises(ValueError, match="unknown checker"):
        resolve_checker_names("dram-timing,bogus")


def test_checker_set_lookup():
    checker = MshrConservationChecker()
    checker_set = CheckerSet([checker])
    assert checker_set["mshr"] is checker
    assert len(checker_set) == 1
    with pytest.raises(KeyError):
        checker_set["queue"]


# ----------------------------------------------------------------------
# MSHR conservation checker (unit, against a real wrapped file)
# ----------------------------------------------------------------------
def _wrapped_file(organization="conventional", capacity=4):
    checker = MshrConservationChecker()
    file = make_mshr(organization, capacity)
    checker.register_file(0, file, label="test")
    _wrap_mshr_file(file, 0, checker)
    return checker, file


def test_mshr_clean_lifecycle_passes():
    checker, file = _wrapped_file()
    for line in (0x40, 0x80, 0xC0):
        entry, _ = file.allocate(line)
        assert entry is not None
    assert file.search(0x80)[0] is not None
    assert file.search(0x1000)[0] is None
    for line in (0x40, 0x80, 0xC0):
        file.deallocate(line)
    checker.assert_drained()
    assert checker.operations_checked == 8


def test_mshr_duplicate_allocation_caught():
    from repro.mshr.base import MshrEntry

    checker, file = _wrapped_file()
    file.allocate(0x40)
    # A buggy file that hands out a second entry for a live line (the
    # conventional file raises on its own; the checker must catch the
    # organizations that would silently overwrite).
    with pytest.raises(CheckViolation, match="duplicate allocation"):
        checker.on_allocate(0, 0x40, MshrEntry(0x40), 1)


def test_mshr_false_negative_caught():
    checker, file = _wrapped_file()
    file.allocate(0x40)
    with pytest.raises(CheckViolation, match="false negative"):
        checker.on_search(0, 0x40, None, 1)


def test_mshr_phantom_deallocate_caught():
    checker, file = _wrapped_file()
    with pytest.raises(CheckViolation, match="no tracked entry"):
        checker.on_deallocate(0, 0x40, 1)


def test_mshr_occupancy_leak_caught():
    checker, file = _wrapped_file()
    file.allocate(0x40)
    file.occupancy += 1  # simulate a bookkeeping bug
    with pytest.raises(CheckViolation, match="occupancy"):
        file.allocate(0x80)


def test_mshr_leak_reported_on_drain():
    checker, file = _wrapped_file()
    file.allocate(0x40)
    checker.finish()  # in-flight entries are legal at end of run...
    with pytest.raises(CheckViolation, match="still"):
        checker.assert_drained()  # ...but not after a drained workload


@pytest.mark.parametrize("organization", ["conventional", "direct-mapped", "vbf", "quadratic"])
def test_mshr_checker_clean_across_organizations(organization):
    checker, file = _wrapped_file(organization, capacity=8)
    lines = [i * 0x40 for i in range(12)]
    outstanding = []
    for line in lines:
        entry, _ = file.allocate(line)
        if entry is None:
            file.deallocate(outstanding.pop(0))
            entry, _ = file.allocate(line)
            assert entry is not None
        outstanding.append(line)
        file.search(line)
    for line in outstanding:
        file.deallocate(line)
    checker.assert_drained()


# ----------------------------------------------------------------------
# Queue conservation checker (unit, against a stub controller)
# ----------------------------------------------------------------------
class _FakeMrq:
    def __init__(self, capacity):
        self.capacity = capacity
        self.items = []

    def __len__(self):
        return len(self.items)


def _queue_checker(capacity=2):
    checker = QueueConservationChecker()
    controller = SimpleNamespace(
        mc_id=0, engine=SimpleNamespace(now=0), mrq=_FakeMrq(capacity)
    )
    checker.register_controller(0, controller)
    return checker, controller


def _request(addr=0x40):
    from repro.common.request import AccessType, MemoryRequest

    return MemoryRequest(addr, AccessType.READ)


def test_queue_spurious_reject_caught():
    checker, controller = _queue_checker(capacity=2)
    with pytest.raises(CheckViolation, match="spurious backpressure"):
        checker.on_enqueue(0, _request(), accepted=False)


def test_queue_lifecycle_and_double_accept():
    checker, controller = _queue_checker()
    request = _request()
    controller.mrq.items.append(request)
    checker.on_enqueue(0, request, accepted=True)
    with pytest.raises(CheckViolation, match="accepted again"):
        checker.on_enqueue(0, request, accepted=True)


def test_queue_issue_requires_accept():
    checker, controller = _queue_checker()
    entry = SimpleNamespace(request=_request())
    with pytest.raises(CheckViolation, match="not tracked"):
        checker.on_issue(0, entry)


def test_queue_retire_requires_issue():
    checker, controller = _queue_checker()
    request = _request()
    controller.mrq.items.append(request)
    checker.on_enqueue(0, request, accepted=True)
    request.completed_at = 10
    with pytest.raises(CheckViolation, match="retire"):
        checker.on_retire(0, request)


def test_queue_mrq_length_conservation_caught():
    checker, controller = _queue_checker()
    request = _request()
    # Request accepted but never put into the MRQ: length mismatch.
    with pytest.raises(CheckViolation, match="MRQ"):
        checker.on_enqueue(0, request, accepted=True)


def test_queue_full_lifecycle_clean():
    checker, controller = _queue_checker()
    request = _request()
    controller.mrq.items.append(request)
    checker.on_enqueue(0, request, accepted=True)
    controller.mrq.items.remove(request)
    checker.on_issue(0, SimpleNamespace(request=request))
    # The chained callback drives on_retire through complete().
    request.complete(99)
    checker.assert_drained()
    assert checker.retired[0] == 1
    assert checker.in_flight == 0


# ----------------------------------------------------------------------
# Whole-machine integration
# ----------------------------------------------------------------------
def test_machine_with_all_checkers_clean():
    machine = Machine(config_2d(), ["mcf"] * 4, checkers="all")
    machine.run(**TINY)
    assert machine.checker_set is not None
    assert machine.checker_set["dram-timing"].accesses_checked > 0
    assert machine.checker_set["mshr"].operations_checked > 0
    assert sum(machine.checker_set["queue"].retired.values()) > 0


def test_machine_without_checkers_is_uninstrumented():
    machine = Machine(config_2d(), ["mcf"] * 4)
    assert machine.checker_set is None
    for controller in machine.memory.controllers:
        assert not hasattr(controller, "_validate_wrapped")
        for rank in controller.device.ranks:
            for bank in rank.banks:
                assert not hasattr(bank, "_validate_observers")
    for file in machine.l2_mshr_files:
        assert not hasattr(file, "_validate_wrapped")


def test_machine_subset_of_checkers():
    machine = Machine(config_2d(), ["mcf"] * 4, checkers="queue")
    machine.run(**TINY)
    assert len(machine.checker_set) == 1
    with pytest.raises(KeyError):
        machine.checker_set["mshr"]


def test_timing_fault_is_caught_on_aggressive_config():
    faults.install(faults.parse_fault("timing:*:*:-1:0.5"))
    try:
        machine = Machine(
            config_3d_fast(), ["mcf"] * 4, workload_name="T", checkers="all"
        )
        with pytest.raises(CheckViolation) as excinfo:
            machine.run(**TINY)
    finally:
        faults.clear()
    assert excinfo.value.checker == "dram-timing"
    assert excinfo.value.constraint


def test_timing_fault_respects_cell_coordinates():
    faults.install(faults.parse_fault("timing:other-config:*:-1:0.5"))
    try:
        machine = Machine(
            config_2d(), ["mcf"] * 4, workload_name="T", checkers="all"
        )
        machine.run(**TINY)  # fault targets a different config: clean
    finally:
        faults.clear()
