"""Differential regression tests: engines must be bit-identical.

The calendar-queue engine is only a faster implementation of the heap
engine's contract — same workload, same seed must give the same DRAM
command transcript and the same stat tables, record for record and
counter for counter.  These tests are the regression net under every
future engine optimization.
"""

import pytest

from repro.system.config import config_2d, config_3d_fast
from repro.validate import diff_engines, diff_runs, diff_timing_presets
from repro.validate.diff import TracedRun
from repro.workloads.mixes import MIXES

WARMUP, MEASURE = 500, 2_000
MIX = MIXES["H1"]


@pytest.mark.parametrize("factory", [config_2d, config_3d_fast])
def test_engines_bit_identical(factory):
    config = factory()
    report, lhs, rhs = diff_engines(
        config, list(MIX.benchmarks),
        warmup=WARMUP, measure=MEASURE, workload_name=MIX.name,
    )
    assert report.identical, report.format()
    assert lhs.commands == rhs.commands > 0
    assert lhs.engine_name == "Engine"
    assert rhs.engine_name == "HeapEngine"
    # Identity must hold record-for-record, not just in summary.
    assert lhs.transcript == rhs.transcript
    assert lhs.stats == rhs.stats
    assert "IDENTICAL" in report.format()


def test_checkers_do_not_perturb_the_simulation():
    config = config_2d()
    plain, lhs_plain, _ = diff_engines(
        config, list(MIX.benchmarks),
        warmup=WARMUP, measure=MEASURE, workload_name=MIX.name,
    )
    checked, lhs_checked, _ = diff_engines(
        config, list(MIX.benchmarks),
        warmup=WARMUP, measure=MEASURE, workload_name=MIX.name,
        checkers="all",
    )
    assert plain.identical and checked.identical
    assert lhs_plain.transcript == lhs_checked.transcript


def test_diff_reports_first_divergence():
    config = config_2d()
    report, lhs, rhs = diff_engines(
        config, list(MIX.benchmarks),
        warmup=WARMUP, measure=MEASURE, workload_name=MIX.name,
    )
    # Fabricate a divergence in the middle of the rhs transcript.
    index = rhs.commands // 2
    broken = list(rhs.transcript)
    broken[index] = broken[index]._replace(data_time=broken[index].data_time + 1)
    mutant = TracedRun(
        label="mutant", config_name=rhs.config_name, workload=rhs.workload,
        engine_name=rhs.engine_name, transcript=broken, stats=rhs.stats,
        result=rhs.result,
    )
    diverged = diff_runs(lhs, mutant)
    assert not diverged.identical
    assert diverged.first_divergence == index
    assert diverged.lhs_record == lhs.transcript[index]
    assert diverged.rhs_record == broken[index]
    text = diverged.format()
    assert f"#{index}" in text
    assert "data@" in text  # bank-state dump of the diverging command


def test_diff_reports_length_mismatch():
    config = config_2d()
    _, lhs, rhs = diff_engines(
        config, list(MIX.benchmarks),
        warmup=WARMUP, measure=MEASURE, workload_name=MIX.name,
    )
    short = TracedRun(
        label="short", config_name=rhs.config_name, workload=rhs.workload,
        engine_name=rhs.engine_name, transcript=rhs.transcript[:-3],
        stats=rhs.stats, result=rhs.result,
    )
    report = diff_runs(lhs, short)
    assert not report.transcripts_identical
    assert report.first_divergence == len(rhs.transcript) - 3
    assert report.lhs_record is not None
    assert report.rhs_record is None


def test_timing_presets_diverge():
    config = config_2d()
    report, lhs, rhs = diff_timing_presets(
        config, list(MIX.benchmarks),
        preset_a="2d", preset_b="true-3d",
        warmup=WARMUP, measure=MEASURE, workload_name=MIX.name,
    )
    assert not report.identical
    assert report.first_divergence is not None
    # The faster preset is visible in the very report that localizes it.
    assert "DIVERGE" in report.format()
