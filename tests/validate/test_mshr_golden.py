"""Golden-stats snapshots for the MSHR family.

Each organization is driven through the same fixed, seeded
allocate/search/deallocate stream (from ``tests.strategies``) with the
conservation checker attached, and its final statistics are compared
against pinned golden values.  Any change to probe counting, hashing,
slot placement, or the VBF presence filter shows up here as a concrete
numeric diff — review it, and re-pin only if the change is intended.

"dynamic" is the conventional file under a deterministic
``set_capacity_limit`` schedule, exercising the resize path the
:class:`~repro.mshr.dynamic.DynamicMshrTuner` uses at runtime.
"""

import pytest

from repro.mshr.factory import make_mshr
from repro.validate import MshrConservationChecker
from repro.validate.hooks import _wrap_mshr_file

from tests.strategies import address_stream

SEED = 1234
CAPACITY = 8
STREAM_LENGTH = 300

#: (organization, capacity-limit schedule step) -> final fingerprint:
#: (allocated, merged, stalled, freed, total_accesses, total_probes)
GOLDEN = {
    "conventional": (266, 34, 247, 266, 1079, 1079),
    "direct-mapped": (266, 34, 247, 266, 1079, 3896),
    "vbf": (266, 34, 247, 266, 1079, 1576),
    "quadratic": (266, 34, 247, 266, 1079, 3945),
    "dynamic": (277, 23, 262, 277, 1116, 1116),
}


def _drive(file, checker, limit_schedule=None):
    """Feed the fixed stream through a file; returns the fingerprint.

    Protocol mirrors the L2 miss path: search first, merge on hit,
    allocate on miss; on a structural stall retire the oldest
    outstanding lines until the allocation succeeds.  Every 25
    operations one line retires, keeping steady-state pressure near
    capacity.
    """
    stream = address_stream(SEED, length=STREAM_LENGTH, footprint_lines=64)
    outstanding = []
    allocated = merged = stalled = freed = 0
    for index, line in enumerate(stream):
        if limit_schedule is not None and index % 50 == 0:
            file.set_capacity_limit(limit_schedule[(index // 50) % len(limit_schedule)])
        entry, _ = file.search(line)
        if entry is not None:
            merged += 1
        else:
            entry, _ = file.allocate(line)
            while entry is None:
                stalled += 1
                file.deallocate(outstanding.pop(0))
                freed += 1
                entry, _ = file.allocate(line)
            allocated += 1
            outstanding.append(line)
        if index % 25 == 24 and outstanding:
            file.deallocate(outstanding.pop(0))
            freed += 1
    while outstanding:
        file.deallocate(outstanding.pop(0))
        freed += 1
    checker.assert_drained()
    return (
        allocated, merged, stalled, freed,
        file.total_accesses, file.total_probes,
    )


@pytest.mark.parametrize("organization", sorted(GOLDEN))
def test_golden_stats(organization):
    if organization == "dynamic":
        file = make_mshr("conventional", CAPACITY)
        schedule = (8, 4, 2, 6)
    else:
        file = make_mshr(organization, CAPACITY)
        schedule = None
    checker = MshrConservationChecker()
    checker.register_file(0, file, label=organization)
    _wrap_mshr_file(file, 0, checker)
    fingerprint = _drive(file, checker, schedule)
    assert fingerprint == GOLDEN[organization], (
        f"{organization}: fingerprint {fingerprint} != golden "
        f"{GOLDEN[organization]} — stats semantics changed; re-pin only "
        "if intended"
    )
    assert file.occupancy == 0
