"""Conservation properties: nothing gets lost in the plumbing.

Event-driven simulators die by lost wakeups — a request parked on a full
MSHR/MRQ that never retries deadlocks silently or leaks.  These tests
push randomized traffic through each layer and assert that every request
completes exactly once and every structure drains back to empty.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.array import CacheArray
from repro.cache.l2 import BankedL2Cache
from repro.common.request import AccessType, MemoryRequest
from repro.dram.timing import ddr2_commodity
from repro.engine import Engine
from repro.interconnect.links import tsv_bus
from repro.memctrl.memsys import MainMemory
from repro.mshr.conventional import ConventionalMshr
from repro.mshr.vbf_mshr import VbfMshr


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), num_requests=st.integers(1, 120))
def test_memory_system_completes_every_request(seed, num_requests):
    rng = random.Random(seed)
    engine = Engine()
    memory = MainMemory(
        engine,
        ddr2_commodity(),
        bus_factory=lambda n: tsv_bus(64, name=n),
        num_mcs=2,
        total_ranks=8,
        aggregate_queue_capacity=8,  # tiny: forces heavy backpressure
    )
    completed = []
    pending = []
    for _ in range(num_requests):
        access = AccessType.WRITEBACK if rng.random() < 0.3 else AccessType.READ
        request = MemoryRequest(
            rng.randrange(1 << 24) & ~63,
            access,
            created_at=engine.now,
            callback=completed.append,
        )
        pending.append(request)

    # Feed requests through the backpressure interface.
    queue = list(pending)

    def feed():
        while queue:
            if not memory.enqueue(queue[0]):
                request = queue[0]
                memory.wait_for_space(request.addr, feed)
                return
            queue.pop(0)

    feed()
    engine.run(max_events=2_000_000)
    assert len(completed) == num_requests
    assert {r.req_id for r in completed} == {r.req_id for r in pending}
    assert all(r.completed_at is not None for r in pending)
    assert all(len(mc.mrq) == 0 for mc in memory.controllers)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    mshr_entries=st.integers(1, 4),
    num_requests=st.integers(1, 100),
)
def test_l2_drains_under_tiny_mshr_and_mrq(seed, mshr_entries, num_requests):
    rng = random.Random(seed)
    engine = Engine()
    memory = MainMemory(
        engine,
        ddr2_commodity(),
        bus_factory=lambda n: tsv_bus(64, name=n),
        num_mcs=1,
        total_ranks=8,
        aggregate_queue_capacity=4,
    )
    l2 = BankedL2Cache(
        engine,
        CacheArray(64 * 1024, 8, 64),
        memory,
        [VbfMshr(mshr_entries) if seed % 2 else ConventionalMshr(mshr_entries)],
        num_banks=4,
    )
    completed = []
    for i in range(num_requests):
        # A small page pool so merges, hits and conflicts all occur.
        addr = (rng.randrange(64) * 4096 + rng.randrange(64) * 64)
        request = MemoryRequest(
            addr, AccessType.READ, core_id=i % 4,
            created_at=engine.now, callback=completed.append,
        )
        l2.access(request)
    engine.run(max_events=2_000_000)
    assert len(completed) == num_requests
    assert l2.mshr_occupancy() == 0
    assert all(not w for w in l2._mshr_waiters)


def test_full_machine_conserves_and_drains():
    """A whole 4-core machine empties its structures when run long."""
    from repro.common.units import MIB
    from repro.system.config import config_quad_mc
    from repro.system.machine import Machine

    config = config_quad_mc().derive(
        l2_size=1 * MIB, l2_assoc=16, dram_capacity=64 * MIB
    )
    machine = Machine(config, ["qsort", "S.all", "mcf", "gzip"])
    machine.run(warmup_instructions=1_000, measure_instructions=4_000)
    # Cores never stop, but at any quiescent instant accounting holds:
    dispatched = sum(c.stats.get("dispatched_refs") for c in machine.cores)
    committed = sum(c.committed for c in machine.cores)
    assert dispatched > 0 and committed > 0
    # MSHR occupancy is bounded by capacity limits at all times.
    for file in machine.l2_mshr_files:
        assert 0 <= file.occupancy <= file.capacity


@pytest.mark.parametrize("organization", ["conventional", "vbf", "direct-mapped"])
def test_mshr_stall_wakeups_are_never_lost(organization):
    """A single-entry MSHR with many waiters must drain them all."""
    from repro.mshr.factory import make_mshr

    engine = Engine()
    memory = MainMemory(
        engine,
        ddr2_commodity(),
        bus_factory=lambda n: tsv_bus(64, name=n),
        num_mcs=1,
        total_ranks=8,
    )
    l2 = BankedL2Cache(
        engine,
        CacheArray(64 * 1024, 8, 64),
        memory,
        [make_mshr(organization, 1)],
        num_banks=2,
    )
    completed = []
    for page in range(20):
        l2.access(
            MemoryRequest(
                page * 4096, AccessType.READ,
                created_at=0, callback=completed.append,
            )
        )
    engine.run(max_events=2_000_000)
    assert len(completed) == 20
