"""Batched-vs-scalar equivalence: the fused fast path changes nothing.

The array-batched core loop (columnar ``TraceBatch`` + fused L1-hit
runs) is an execution strategy, not a model change — every stat table
must be bit-identical to the per-item scalar dispatch loop.  These
property tests drive both modes over randomized traces that mix L1
hits, misses, writes and TLB misses, at batch sizes chosen to stress
batch boundaries (1, 2, odd, huge), and diff the complete stat dump.
"""

import random

import pytest

from repro.cpu.trace import batch_iter
from repro.system.config import config_2d
from repro.system.machine import Machine
from repro.workloads.benchmarks import BENCHMARKS, BenchmarkSpec

_WARMUP = 1_000
_MEASURE = 4_000


def _random_items(seed: int):
    """Finite random mix, replayed in a loop as an endless trace.

    ~80% of references walk a small hot footprint (L1 hits once warm),
    the rest jump across a 32 MiB span (L1/L2 misses and TLB misses);
    ~30% are writes; PCs rotate through a handful of sites so the
    stride prefetcher sees both stable and broken patterns.
    """
    rng = random.Random(seed)
    pcs = [0x400 + 4 * i for i in range(6)]
    items = []
    hot_base = 0x10_0000
    for _ in range(3_000):
        if rng.random() < 0.8:
            addr = hot_base + rng.randrange(0, 8 * 1024)
        else:
            addr = rng.randrange(0, 32 * 1024 * 1024)
        items.append((
            rng.randrange(0, 6),              # gap
            addr,
            1 if rng.random() < 0.3 else 0,   # is_write
            rng.choice(pcs),
        ))
    return items


def _register(name: str, seed: int, batch_size: int) -> str:
    from repro.cpu.trace import TraceItem

    items = _random_items(seed)

    def factory(base, _seed):
        while True:
            for gap, addr, w, pc in items:
                yield TraceItem(gap, base + addr, bool(w), pc)

    BENCHMARKS[name] = BenchmarkSpec(
        name, "Micro", 0.0, factory, base_cpi=0.5,
        batch_factory=lambda base, seed: batch_iter(
            factory(base, seed), size=batch_size
        ),
    )
    return name


@pytest.fixture
def random_benchmark(request):
    seed, batch_size = request.param
    name = f"_randmix_s{seed}_b{batch_size}"
    _register(name, seed, batch_size)
    yield name
    BENCHMARKS.pop(name, None)


def _run(name: str, batched: bool):
    config = config_2d().derive(name="2D-1c", num_cores=1)
    machine = Machine(
        config, [name], seed=7, workload_name=name, batched=batched
    )
    result = machine.run(
        warmup_instructions=_WARMUP, measure_instructions=_MEASURE
    )
    return result, machine.registry.dump(), machine.engine.events_fired


@pytest.mark.parametrize(
    "random_benchmark",
    [(11, 1), (11, 2), (23, 7), (23, 4096)],
    indirect=True,
    ids=["batch1", "batch2", "batch-odd", "batch-huge"],
)
def test_random_mix_stats_bit_identical(random_benchmark):
    scalar_result, scalar_stats, scalar_events = _run(
        random_benchmark, batched=False
    )
    batched_result, batched_stats, batched_events = _run(
        random_benchmark, batched=True
    )
    assert batched_stats == scalar_stats
    assert batched_result.hmipc == scalar_result.hmipc
    assert batched_result.total_cycles == scalar_result.total_cycles
    for bcore, score in zip(batched_result.cores, scalar_result.cores):
        assert (bcore.ipc, bcore.instructions, bcore.cycles) == (
            score.ipc, score.instructions, score.cycles
        )
        assert bcore.l2_mpki == score.l2_mpki
        assert bcore.avg_load_latency == score.avg_load_latency
    # The fused path exists to fire fewer events; on a mostly-hit mix it
    # must actually engage (strictly fewer events), not silently fall
    # back to scalar dispatch everywhere.
    assert batched_events < scalar_events


def test_native_producer_matches_batch_iter_adapter():
    """A generator's native columnar stream must equal the adapter's.

    The synthetic generators produce TraceBatch columns directly; the
    guarantee is that this is purely a faster construction of the same
    items the row-form generator yields.
    """
    import itertools

    from repro.workloads import synthetic as syn

    rows = list(itertools.islice(
        syn.sequential_scan(0x4000, footprint=4096, stride=64, gap=1,
                            seed=3),
        1_500,
    ))
    native = []
    for batch in syn.sequential_scan_batches(
            0x4000, footprint=4096, stride=64, gap=1, seed=3):
        native.extend(batch)
        if len(native) >= 1_500:
            break
    assert native[:1_500] == rows


# ---------------------------------------------------------------------------
# Miss-heavy mixes: the memory-controller fused drain under stress.
# ---------------------------------------------------------------------------
#
# The random mix above is mostly L1 hits, so it exercises the *core*
# fused dispatch.  The mixes below are DRAM-bound: deep MRQs, blocked
# cores, row conflicts, refresh blackouts, MSHR backpressure.  In
# batched mode the Machine also arms the memory-controller fused drain,
# so this diff covers both fast paths against the fully scalar machine.

from repro.validate import missheavy


# The stock L2 is 12 MiB — a looping synthetic trace becomes resident
# after one pass and stops missing.  Shrink the L2 so the mixes stay
# DRAM-bound for their whole run.
_SMALL_L2 = dict(l2_size=64 * 1024, l2_assoc=8)


def _run_mc(name: str, batched: bool, **overrides):
    params = dict(_SMALL_L2)
    params.update(overrides)
    config = config_2d().derive(name="2D-mh", num_cores=1, **params)
    machine = Machine(
        config, [name], seed=7, workload_name=name, batched=batched
    )
    result = machine.run(
        warmup_instructions=_WARMUP, measure_instructions=_MEASURE
    )
    return result, machine.registry.dump(), machine


@pytest.fixture
def miss_heavy_benchmark(request):
    kind, seed, batch_size = request.param
    name = missheavy.register_miss_heavy(kind, seed, batch_size)
    yield kind, name
    missheavy.unregister(name)


@pytest.mark.parametrize(
    "miss_heavy_benchmark",
    [
        ("streaming", 5, 1),
        ("streaming", 5, 4096),
        ("pointer-chase", 9, 2),
        ("row-conflict-max", 13, 7),
        ("refresh-straddling", 17, 4096),
    ],
    indirect=True,
    ids=[
        "streaming-batch1",
        "streaming-batch-huge",
        "pointer-chase-batch2",
        "row-conflict-batch-odd",
        "refresh-straddle-batch-huge",
    ],
)
def test_miss_heavy_stats_bit_identical(miss_heavy_benchmark):
    kind, name = miss_heavy_benchmark
    scalar_result, scalar_stats, scalar_machine = _run_mc(name, batched=False)
    batched_result, batched_stats, batched_machine = _run_mc(name, batched=True)
    assert batched_stats == scalar_stats
    assert batched_result.hmipc == scalar_result.hmipc
    assert batched_result.total_cycles == scalar_result.total_cycles
    for bcore, score in zip(batched_result.cores, scalar_result.cores):
        assert bcore.avg_load_latency == score.avg_load_latency
        assert bcore.l2_mpki == score.l2_mpki
    assert not scalar_machine.fused_mc_enabled
    assert batched_machine.fused_mc_enabled
    assert (
        batched_machine.engine.events_fired
        <= scalar_machine.engine.events_fired
    )
    if kind == "streaming":
        # The drain's best case must actually engage, otherwise this
        # differential is scalar-vs-scalar and proves nothing.
        fused = sum(
            mc.fused_stats()["fused_issues"]
            for mc in batched_machine.memory.controllers
        )
        assert fused > 0
        assert (
            batched_machine.engine.events_fired
            < scalar_machine.engine.events_fired
        )


def test_miss_heavy_single_entry_mshr_bit_identical():
    """One MSHR entry per bank: maximal backpressure and fill churn."""
    name = missheavy.register_miss_heavy("streaming", 21, 7)
    try:
        dumps = []
        for batched in (False, True):
            _, dump, _ = _run_mc(
                name, batched=batched, l1_mshr_entries=1, l2_mshr_per_bank=1
            )
            dumps.append(dump)
        assert dumps[0] == dumps[1]
    finally:
        missheavy.unregister(name)


def test_miss_heavy_multicore_mixed_kinds_bit_identical():
    """All four miss-heavy kinds at once on a 4-core machine."""
    names = missheavy.register_all(seed=31, batch_size=256)
    try:
        dumps = []
        for batched in (False, True):
            config = config_2d().derive(name="2D-mh4", **_SMALL_L2)
            machine = Machine(
                config, list(names.values()), seed=11,
                workload_name="missheavy-4c", batched=batched,
            )
            machine.run(
                warmup_instructions=_WARMUP, measure_instructions=_MEASURE
            )
            dumps.append(machine.registry.dump())
        assert dumps[0] == dumps[1]
    finally:
        missheavy.unregister(names)


def test_multicore_mix_stats_bit_identical():
    """The stock 4-core H1 mix: full-system scalar vs batched dump."""
    from repro.workloads.mixes import MIXES

    mix = MIXES["H1"]
    dumps = []
    for batched in (False, True):
        machine = Machine(
            config_2d(), list(mix.benchmarks), seed=42,
            workload_name=mix.name, batched=batched,
        )
        machine.run(
            warmup_instructions=_WARMUP, measure_instructions=_MEASURE
        )
        dumps.append(machine.registry.dump())
    assert dumps[0] == dumps[1]
