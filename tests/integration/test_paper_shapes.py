"""Integration tests: the paper's qualitative results at reduced scale.

These run real multi-core simulations (seconds each) and assert the
*shape* of every headline result: orderings, crossovers, and who wins.
Absolute magnitudes are checked loosely — the substrate is a scaled
simulator, not the authors' testbed.
"""

import pytest

from repro.experiments.runner import run_matrix
from repro.system.config import (
    config_2d,
    config_3d,
    config_3d_fast,
    config_3d_wide,
    config_quad_mc,
)
from repro.system.scale import ExperimentScale
from repro.workloads.mixes import MIXES

SCALE = ExperimentScale("shape", 2_000, 8_000)
HV_MIXES = [MIXES["H1"], MIXES["VH2"]]


@pytest.fixture(scope="module")
def figure4_table():
    configs = [config_2d(), config_3d(), config_3d_wide(), config_3d_fast()]
    return run_matrix(
        configs, HV_MIXES + [MIXES["M3"]], SCALE, workers=1
    )


def test_figure4_ordering_holds_on_memory_intensive_mixes(figure4_table):
    for mix in ("H1", "VH2"):
        s3d = figure4_table.speedup("3D", mix, "2D")
        wide = figure4_table.speedup("3D-wide", mix, "2D")
        fast = figure4_table.speedup("3D-fast", mix, "2D")
        assert 1.0 < s3d < wide < fast, (mix, s3d, wide, fast)


def test_figure4_3d_fast_wins_big_on_memory_intensive(figure4_table):
    # Paper: 2.17x GM; we accept anything clearly >1.5x.
    gm = figure4_table.gm_speedup("3D-fast", "2D", groups=("H", "VH"))
    assert gm > 1.5


def test_figure4_moderate_mixes_benefit_less(figure4_table):
    fast_m = figure4_table.speedup("3D-fast", "M3", "2D")
    fast_vh = figure4_table.speedup("3D-fast", "VH2", "2D")
    assert fast_m < fast_vh
    assert fast_m < 2.0  # "these programs spend less time waiting on memory"


@pytest.fixture(scope="module")
def figure6_table():
    base = config_3d_fast()
    configs = [
        base.derive(name="1MC-8R"),
        base.derive(name="4MC-16R", num_mcs=4, total_ranks=16),
        base.derive(name="1MC-16R", total_ranks=16),
        base.derive(
            name="4MC-16R-4RB", num_mcs=4, total_ranks=16, row_buffer_entries=4
        ),
        base.derive(
            name="4MC-16R-2RB", num_mcs=4, total_ranks=16, row_buffer_entries=2
        ),
    ]
    return run_matrix(configs, HV_MIXES, SCALE, workers=1)


def test_figure6a_more_mcs_beats_more_ranks(figure6_table):
    mc_gain = figure6_table.gm_speedup("4MC-16R", "1MC-8R")
    rank_gain = figure6_table.gm_speedup("1MC-16R", "1MC-8R")
    assert mc_gain > 1.02
    assert mc_gain > rank_gain


def test_figure6b_row_buffer_entries_help_with_diminishing_returns(
    figure6_table,
):
    """Row-buffer cache entries help (a little, here) and never hurt.

    Our synthetic workloads hit in the row buffers far more often than
    the paper's real applications (first-touch allocation de-conflicts
    concurrent streams), so the absolute gain is much smaller than the
    paper's +41%; the *shape* — entry #2 carries whatever benefit
    exists, entries #3/#4 add nearly nothing — still holds.  See
    EXPERIMENTS.md.
    """
    one = figure6_table.gm_speedup("4MC-16R", "1MC-8R")
    two = figure6_table.gm_speedup("4MC-16R-2RB", "1MC-8R")
    four = figure6_table.gm_speedup("4MC-16R-4RB", "1MC-8R")
    assert two > one * 0.97  # the first extra entry helps (or is neutral)
    assert four >= two * 0.97  # more entries never hurt much
    # Most of whatever row-buffer benefit exists comes from entry #2.
    assert (two - one) > (four - two) - 0.05


@pytest.fixture(scope="module")
def figure7_table():
    base = config_quad_mc()
    per_bank = base.l2_mshr_per_bank
    configs = [
        base.derive(name="1x"),
        base.derive(name="4x", l2_mshr_per_bank=per_bank * 4),
        base.derive(name="8x", l2_mshr_per_bank=per_bank * 8),
    ]
    return run_matrix(configs, HV_MIXES, SCALE, workers=1)


def test_figure7_bigger_mshrs_help_memory_intensive(figure7_table):
    assert figure7_table.gm_speedup("4x", "1x") > 1.05


def test_figure7_8x_saturates(figure7_table):
    gain_4x = figure7_table.gm_speedup("4x", "1x")
    gain_8x = figure7_table.gm_speedup("8x", "1x")
    # 8x adds little beyond 4x (paper: "no significant additional benefit").
    assert gain_8x < gain_4x * 1.10


@pytest.fixture(scope="module")
def figure9_table():
    base = config_quad_mc()
    big = base.l2_mshr_per_bank * 8
    configs = [
        base.derive(name="ideal-8x", l2_mshr_per_bank=big),
        base.derive(
            name="vbf-8x", l2_mshr_per_bank=big, l2_mshr_organization="vbf"
        ),
        base.derive(
            name="linear-8x", l2_mshr_per_bank=big,
            l2_mshr_organization="direct-mapped",
        ),
    ]
    return run_matrix(configs, HV_MIXES, SCALE, workers=1)


def test_figure9_vbf_matches_ideal_cam(figure9_table):
    # "we achieve performance that is about the same as the ideal (and
    # impractical) single-cycle, fully-associative traditional MSHR."
    ratio = figure9_table.gm_speedup("vbf-8x", "ideal-8x")
    assert ratio > 0.95


def test_figure9_vbf_beats_plain_linear_probing(figure9_table):
    assert (
        figure9_table.gm_speedup("vbf-8x", "ideal-8x")
        >= figure9_table.gm_speedup("linear-8x", "ideal-8x")
    )


def test_figure9_vbf_probe_counts_are_small(figure9_table):
    # Paper: 2.21-2.31 probes per access including the mandatory first.
    for mix in ("H1", "VH2"):
        vbf_probes = figure9_table.result("vbf-8x", mix).mshr_avg_probes
        linear_probes = figure9_table.result("linear-8x", mix).mshr_avg_probes
        assert 1.0 <= vbf_probes <= 4.0
        assert vbf_probes <= linear_probes


def test_scalable_mha_matters_far_less_on_2d():
    """Section 5's closing check: on off-chip memory, other bottlenecks
    (the FSB) dominate, so the scalable MHA buys far less than on the
    3D-stacked organizations.  Our 2D baseline retains some MSHR
    sensitivity (see EXPERIMENTS.md), so we assert the *relative* claim.
    """
    mixes = [MIXES["H1"], MIXES["VH2"]]
    flat = config_2d()
    dual = config_quad_mc().derive(
        name="dual", num_mcs=2, total_ranks=8
    )
    configs = [
        flat.derive(name="2d-base"),
        flat.derive(
            name="2d-vbf-dyn", l2_mshr_per_bank=64,
            l2_mshr_organization="vbf", l2_mshr_dynamic=True,
        ),
        dual.derive(name="dual-base"),
        dual.derive(
            name="dual-vbf-dyn",
            l2_mshr_per_bank=dual.l2_mshr_per_bank * 8,
            l2_mshr_organization="vbf", l2_mshr_dynamic=True,
        ),
    ]
    table = run_matrix(configs, mixes, SCALE, workers=1)
    gain_2d = table.gm_speedup("2d-vbf-dyn", "2d-base")
    gain_3d = table.gm_speedup("dual-vbf-dyn", "dual-base")
    assert gain_3d > gain_2d * 1.15
    assert gain_2d < 1.5  # never a dramatic win off-chip
