"""Golden-value regression pins.

These assert exact metric values for fixed (config, workload, seed,
scale) points.  They exist to catch *unintended* model drift: any change
to timing, scheduling, or workload generation shows up here first.

If you changed the model ON PURPOSE, re-pin: run the printed command and
update the constants — and say so in your commit message.
"""

import pytest

from repro.common.units import MIB
from repro.system.config import config_2d, config_3d_fast
from repro.system.machine import run_workload


def _run(config, benchmarks):
    return run_workload(
        config.derive(l2_size=1 * MIB, l2_assoc=16, dram_capacity=64 * MIB),
        benchmarks,
        warmup_instructions=1_000,
        measure_instructions=4_000,
        seed=42,
    )


# Re-pin with:
#   python -c "from tests.integration.test_golden import show; show()"
# Last re-pin: canonical core placement (benchmark instances are
# assigned to slots in sorted order, so a mix is a multiset — see
# Machine.__init__).
GOLDEN_2D_HMIPC = 0.20015846288262218
GOLDEN_3DFAST_HMIPC = 0.45431550105189666


def show():  # pragma: no cover - re-pinning helper
    print("2D     :", _run(config_2d(), ["S.copy", "mcf", "gzip", "milc"]).hmipc)
    print("3D-fast:", _run(config_3d_fast(), ["S.copy", "mcf", "gzip", "milc"]).hmipc)


def test_golden_2d():
    result = _run(config_2d(), ["S.copy", "mcf", "gzip", "milc"])
    assert result.hmipc == pytest.approx(GOLDEN_2D_HMIPC, rel=1e-12)


def test_golden_3d_fast():
    result = _run(config_3d_fast(), ["S.copy", "mcf", "gzip", "milc"])
    assert result.hmipc == pytest.approx(GOLDEN_3DFAST_HMIPC, rel=1e-12)


def test_golden_run_is_reproducible_within_session():
    a = _run(config_2d(), ["S.copy", "mcf", "gzip", "milc"])
    b = _run(config_2d(), ["S.copy", "mcf", "gzip", "milc"])
    assert a.hmipc == b.hmipc
    assert a.total_cycles == b.total_cycles


def test_benchmark_order_does_not_affect_results():
    """A mix is a multiset: canonical placement makes permutations of
    the same benchmarks simulate identically (per-core values included),
    with results reported in the caller's order."""
    a = _run(config_2d(), ["S.copy", "mcf", "gzip", "milc"])
    b = _run(config_2d(), ["milc", "gzip", "mcf", "S.copy"])
    assert a.hmipc == b.hmipc
    assert a.total_cycles == b.total_cycles
    assert [c.benchmark for c in b.cores] == ["milc", "gzip", "mcf", "S.copy"]
    by_name_a = {c.benchmark: (c.ipc, c.instructions, c.l2_mpki) for c in a.cores}
    by_name_b = {c.benchmark: (c.ipc, c.instructions, c.l2_mpki) for c in b.cores}
    assert by_name_a == by_name_b


def test_repeated_benchmarks_keep_distinct_identities():
    """The k-th occurrence of a repeated benchmark is a stable identity
    under permutation (distinct trace seed and VA base per occurrence)."""
    a = _run(config_2d(), ["S.all", "mcf", "S.all", "gzip"])
    b = _run(config_2d(), ["gzip", "S.all", "mcf", "S.all"])
    assert a.hmipc == b.hmipc
    assert a.total_cycles == b.total_cycles
