"""Golden-value regression pins.

These assert exact metric values for fixed (config, workload, seed,
scale) points.  They exist to catch *unintended* model drift: any change
to timing, scheduling, or workload generation shows up here first.

If you changed the model ON PURPOSE, re-pin: run the printed command and
update the constants — and say so in your commit message.
"""

import pytest

from repro.common.units import MIB
from repro.system.config import config_2d, config_3d_fast
from repro.system.machine import run_workload


def _run(config, benchmarks):
    return run_workload(
        config.derive(l2_size=1 * MIB, l2_assoc=16, dram_capacity=64 * MIB),
        benchmarks,
        warmup_instructions=1_000,
        measure_instructions=4_000,
        seed=42,
    )


# Re-pin with:
#   python -c "from tests.integration.test_golden import show; show()"
GOLDEN_2D_HMIPC = 0.19752913965514582
GOLDEN_3DFAST_HMIPC = 0.47760498843137866


def show():  # pragma: no cover - re-pinning helper
    print("2D     :", _run(config_2d(), ["S.copy", "mcf", "gzip", "milc"]).hmipc)
    print("3D-fast:", _run(config_3d_fast(), ["S.copy", "mcf", "gzip", "milc"]).hmipc)


def test_golden_2d():
    result = _run(config_2d(), ["S.copy", "mcf", "gzip", "milc"])
    assert result.hmipc == pytest.approx(GOLDEN_2D_HMIPC, rel=1e-12)


def test_golden_3d_fast():
    result = _run(config_3d_fast(), ["S.copy", "mcf", "gzip", "milc"])
    assert result.hmipc == pytest.approx(GOLDEN_3DFAST_HMIPC, rel=1e-12)


def test_golden_run_is_reproducible_within_session():
    a = _run(config_2d(), ["S.copy", "mcf", "gzip", "milc"])
    b = _run(config_2d(), ["S.copy", "mcf", "gzip", "milc"])
    assert a.hmipc == b.hmipc
    assert a.total_cycles == b.total_cycles
