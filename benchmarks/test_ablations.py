"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.experiments.ablations import (
    run_interleave_ablation,
    run_mshr_org_ablation,
    run_prefetch_ablation,
    run_scheduler_ablation,
)

from conftest import bench_mixes, bench_scale, run_once


def test_ablation_scheduler(benchmark):
    """FR-FCFS (the paper's assumption) vs plain FIFO."""
    scale, mixes = bench_scale(), bench_mixes(default_groups=("H", "VH"))
    result = run_once(
        benchmark, lambda: run_scheduler_ablation(scale=scale, mixes=mixes)
    )
    print()
    print(result.format())
    # Open-row-first scheduling never loses to FIFO on these workloads.
    assert result.gm("fcfs") <= 1.03


def test_ablation_interleave(benchmark):
    """Streamlined page-interleaved banking vs conventional line banking."""
    scale, mixes = bench_scale(), bench_mixes(default_groups=("H", "VH"))
    result = run_once(
        benchmark, lambda: run_interleave_ablation(scale=scale, mixes=mixes)
    )
    print()
    print(result.format())
    # The shared request bus of conventional banking costs performance.
    assert result.gm("line-interleaved") <= 1.05


def test_ablation_prefetch(benchmark):
    """Table 1's prefetchers on vs off."""
    scale, mixes = bench_scale(), bench_mixes(default_groups=("H", "VH"))
    result = run_once(
        benchmark, lambda: run_prefetch_ablation(scale=scale, mixes=mixes)
    )
    print()
    print(result.format())
    assert result.gm("prefetch-off") > 0  # report-only: sign varies by mix


def test_ablation_mshr_organization(benchmark):
    """VBF vs ideal CAM vs plain linear probing at 8x capacity."""
    scale, mixes = bench_scale(), bench_mixes(default_groups=("H", "VH"))
    result = run_once(
        benchmark, lambda: run_mshr_org_ablation(scale=scale, mixes=mixes)
    )
    print()
    print(result.format())
    assert result.probes("vbf") <= result.probes("linear-probe")
    assert result.gm("vbf") >= result.gm("linear-probe") - 0.02
