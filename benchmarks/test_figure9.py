"""Regenerates Figure 9: the scalable L2 MHA (VBF + dynamic resizing).

Paper: VBF performs about the same as the ideal single-cycle CAM at
2.21-2.31 probes/access; V+D yields +23.0% (dual-MC) / +17.8% (quad-MC)
GM(H,VH) over the default 8-entry MSHR.
"""

import pytest

from repro.experiments.figure9 import run_figure9

from conftest import bench_mixes, bench_scale, run_once


@pytest.mark.parametrize("panel", ["dual-mc", "quad-mc"])
def test_figure9(benchmark, panel):
    scale = bench_scale()
    mixes = bench_mixes()

    result = run_once(
        benchmark, lambda: run_figure9(panel=panel, scale=scale, mixes=mixes)
    )
    print()
    print(result.format())

    hv = [m for m in result.mixes if m.startswith(("H1", "H2", "H3", "VH"))]
    if hv:
        ideal = result.gm_improvement("8xMSHR", ("H", "VH"))
        vbf = result.gm_improvement("VBF", ("H", "VH"))
        vd = result.gm_improvement("V+D", ("H", "VH"))
        # The scalable MHA is a clear win over the 8-entry baseline...
        assert vd > 5.0
        # ...and the practical VBF tracks the impractical ideal CAM.
        assert vbf > ideal - 6.0

    # Probe counts: small, and in the paper's band (incl. mandatory 1st).
    probes = result.vbf_probes_per_access("VBF")
    assert 1.0 <= probes <= 4.0
