"""Extension study bench: spend the stack on cache vs memory."""

from repro.experiments.stack_study import run_stack_study

from conftest import bench_mixes, bench_scale, run_once


def test_stack_study(benchmark):
    scale, mixes = bench_scale(), bench_mixes(default_groups=("H", "VH"))
    result = run_once(
        benchmark, lambda: run_stack_study(scale=scale, mixes=mixes)
    )
    print()
    print(result.format())

    # Paper Section 6's ranking on memory-intensive workloads:
    # stacked cache < conventionally stacked memory < re-architected.
    assert result.gm("3D-fast") > result.gm("2D+L3")
    assert result.gm("quad-MC") >= result.gm("3D-fast") * 0.95
