"""Shared configuration for the figure/table regeneration benches.

Each bench regenerates one table or figure of the paper and prints the
same rows the paper reports, then asserts the headline *shape*.

Scale control:

* ``REPRO_SCALE``   — smoke | default | large (default: smoke, so the
  whole harness finishes in minutes; use ``default`` for the numbers
  recorded in EXPERIMENTS.md).
* ``REPRO_MIXES``   — comma-separated mix subset (default: per-figure).
* ``REPRO_PARALLEL``— worker processes for the run matrices.
"""

import os

import pytest

from repro.system.scale import get_scale
from repro.workloads.mixes import MIX_ORDER, MIXES, mixes_in_groups


def bench_scale():
    return get_scale(os.environ.get("REPRO_SCALE", "smoke"))


def bench_mixes(default_groups=None):
    """Mixes selected by REPRO_MIXES, else by the figure's default groups."""
    names = os.environ.get("REPRO_MIXES")
    if names:
        return [MIXES[name.strip()] for name in names.split(",")]
    if default_groups is None:
        return [MIXES[name] for name in MIX_ORDER]
    return list(mixes_in_groups(*default_groups))


@pytest.fixture()
def scale():
    return bench_scale()


def run_once(benchmark, fn):
    """pytest-benchmark wrapper: a full figure is one (slow) iteration."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
