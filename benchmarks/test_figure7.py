"""Regenerates Figure 7: L2 MSHR capacity scaling + dynamic tuning.

Paper shape: 2x/4x help the memory-intensive mixes a lot, 8x saturates
(and can hurt HM2/M2-like mixes via L2 churn); dynamic capacity tuning
keeps the wins without the losses.
"""

import pytest

from repro.experiments.figure7 import run_figure7

from conftest import bench_mixes, bench_scale, run_once


@pytest.mark.parametrize("panel", ["dual-mc", "quad-mc"])
def test_figure7(benchmark, panel):
    scale = bench_scale()
    mixes = bench_mixes()

    result = run_once(
        benchmark, lambda: run_figure7(panel=panel, scale=scale, mixes=mixes)
    )
    print()
    print(result.format())

    hv = [m for m in result.mixes if m.startswith(("H1", "H2", "H3", "VH"))]
    if hv:
        gm4 = result.gm_improvement("4xMSHR", ("H", "VH"))
        gm8 = result.gm_improvement("8xMSHR", ("H", "VH"))
        dyn = result.gm_improvement("Dynamic", ("H", "VH"))
        assert gm4 > 3.0  # bigger MSHRs clearly help
        assert gm8 < gm4 + 12.0  # saturation beyond 4x
        assert dyn > -2.0  # dynamic tuning never loses overall
