"""Regenerates Figure 6: rank/MC grid (a) and row-buffer sweep (b).

Paper GM(H,VH) over 3D-fast: 2MC 1.13x, 4MC 1.32x, 16 ranks alone
+0.4%, extra L2 ~nothing; row-buffer entries take the two highlighted
configs to 1.55x / 1.75x with most of the gain from the first entry.
"""

from repro.experiments.figure6 import run_figure6a, run_figure6b

from conftest import bench_mixes, bench_scale, run_once


def test_figure6a_ranks_and_mcs(benchmark):
    scale = bench_scale()
    mixes = bench_mixes(default_groups=("H", "VH"))

    result = run_once(benchmark, lambda: run_figure6a(scale=scale, mixes=mixes))
    print()
    print(result.format())

    # Shape: MC scaling dominates, rank scaling is minor, more L2 does
    # almost nothing for memory-intensive workloads.
    assert result.gm("4MC-16R") > result.gm("1MC-16R")
    assert result.gm("4MC-16R") > 1.1
    assert result.gm("+1M-L2") < 1.1


def test_figure6b_row_buffer_caches(benchmark):
    scale = bench_scale()
    mixes = bench_mixes(default_groups=("H", "VH"))

    result = run_once(benchmark, lambda: run_figure6b(scale=scale, mixes=mixes))
    print()
    print(result.format())

    for family in ("2MC-8R", "4MC-16R"):
        one = result.gm(f"{family}-1RB")
        two = result.gm(f"{family}-2RB")
        four = result.gm(f"{family}-4RB")
        # Entries help (or are neutral) and never hurt meaningfully.
        assert two > one * 0.97
        assert four > one * 0.97
