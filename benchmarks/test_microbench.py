"""Micro-benchmarks of the core data structures (real wall-clock timing).

These use pytest-benchmark conventionally (many iterations) and guard
against performance regressions in the structures the simulator leans
on: the event engine, the VBF MSHR, and the DRAM bank model.
"""

import random

from repro.dram.bank import Bank
from repro.dram.refresh import RefreshSchedule
from repro.dram.timing import true_3d
from repro.engine import Engine
from repro.mshr.conventional import ConventionalMshr
from repro.mshr.direct_mapped import DirectMappedMshr
from repro.mshr.vbf_mshr import VbfMshr


def test_engine_event_throughput(benchmark):
    """The tracked engine workload: 32 interleaved delay chains.

    Mirrors ``bench_engine_parallel`` in ``scripts/bench_trajectory.py``:
    a deep queue of short, mixed delays is where the calendar-queue
    insert path earns its keep.
    """

    def run():
        engine = Engine()
        counter = [0]

        def tick(delay):
            counter[0] += 1
            if counter[0] < 10_000:
                engine.schedule(delay, tick, delay)

        for i in range(32):
            engine.schedule(i % 13 + 1, tick, i % 13 + 1)
        engine.run()
        return counter[0]

    assert benchmark(run) >= 10_000


def test_engine_chain_throughput(benchmark):
    """Secondary: a single delay-1 chain (queue depth ~1, pure dispatch)."""

    def run():
        engine = Engine()
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < 10_000:
                engine.schedule(1, tick)

        engine.schedule(0, tick)
        engine.run()
        return counter[0]

    assert benchmark(run) == 10_000


def _mshr_workload(mshr, operations):
    live = []
    rng = random.Random(7)
    for op in range(operations):
        if live and (len(live) >= mshr.capacity or rng.random() < 0.5):
            line = live.pop(rng.randrange(len(live)))
            mshr.search(line)
            mshr.deallocate(line)
        else:
            line = rng.randrange(1 << 20) * 64
            found, _ = mshr.search(line)
            if found is None and not mshr.is_full:
                mshr.allocate(line)
                live.append(line)
    return mshr.total_probes


def test_vbf_mshr_throughput(benchmark):
    probes = benchmark(lambda: _mshr_workload(VbfMshr(32), 5_000))
    assert probes > 0


def test_linear_probe_mshr_throughput(benchmark):
    probes = benchmark(lambda: _mshr_workload(DirectMappedMshr(32), 5_000))
    assert probes > 0


def test_conventional_mshr_throughput(benchmark):
    probes = benchmark(lambda: _mshr_workload(ConventionalMshr(32), 5_000))
    assert probes > 0


def test_dram_bank_access_throughput(benchmark):
    def run():
        timing = true_3d()
        bank = Bank(timing, RefreshSchedule(timing, phase=10**9), 4)
        time = 0
        rng = random.Random(3)
        for _ in range(5_000):
            data_time, _ = bank.access(time, rng.randrange(64), False)
            time = data_time
        return time

    assert benchmark(run) > 0
