"""Regenerates Table 2: benchmark MPKI (a) and baseline HMIPC (b)."""

import os

from repro.experiments.table2 import run_table2a, run_table2b
from repro.workloads.benchmarks import BENCHMARKS
from repro.workloads.mixes import MIXES

from conftest import bench_mixes, bench_scale, run_once


def test_table2a_standalone_mpki(benchmark):
    scale = bench_scale()
    names = os.environ.get("REPRO_BENCHMARKS")
    names = [n.strip() for n in names.split(",")] if names else sorted(BENCHMARKS)

    result = run_once(benchmark, lambda: run_table2a(scale=scale, benchmarks=names))
    print()
    print(result.format())

    # Shape: measured MPKI must preserve the paper's coarse ordering.
    mpki = result.mpki
    if {"S.copy", "milc", "namd"} <= set(mpki):
        assert mpki["S.copy"] > mpki["milc"] > mpki["namd"]
    if {"tigr", "mcf"} <= set(mpki):
        assert mpki["tigr"] > mpki["mcf"]


def test_table2b_baseline_hmipc(benchmark):
    scale = bench_scale()
    mixes = bench_mixes()

    result = run_once(benchmark, lambda: run_table2b(scale=scale, mixes=mixes))
    print()
    print(result.format())

    measured = result.hmipc
    groups = {name: MIXES[name].group for name in measured}
    vh = [v for n, v in measured.items() if groups[n] == "VH"]
    m = [v for n, v in measured.items() if groups[n] == "M"]
    if vh and m:
        # VH mixes are far slower than M mixes on the 2D baseline.
        assert max(vh) < min(m)
