"""Regenerates Figure 4: simple 3D-stacked memory speedups over 2D.

Paper: 3D 1.35x, 3D-wide 1.72x, 3D-fast 2.17x GM over the H/VH mixes;
each step contributes roughly equally; moderate mixes gain less.
"""

from repro.experiments.figure4 import run_figure4
from repro.workloads.mixes import MIXES

from conftest import bench_mixes, bench_scale, run_once


def test_figure4(benchmark):
    scale = bench_scale()
    mixes = bench_mixes()

    result = run_once(benchmark, lambda: run_figure4(scale=scale, mixes=mixes))
    print()
    print(result.format())

    groups = {m: MIXES[m].group for m in result.mixes}
    hv = [m for m in result.mixes if groups[m] in ("H", "VH")]
    if hv:
        gm_3d = result.gm("3D", ("H", "VH"))
        gm_wide = result.gm("3D-wide", ("H", "VH"))
        gm_fast = result.gm("3D-fast", ("H", "VH"))
        # The paper's ordering and a clear win for the full combination.
        assert 1.0 < gm_3d < gm_wide < gm_fast
        assert gm_fast > 1.5
    moderate = [m for m in result.mixes if groups[m] == "M"]
    if moderate and hv:
        gm_fast_m = result.gm("3D-fast", ("M",))
        assert gm_fast_m < result.gm("3D-fast", ("H", "VH"))
